//! Conservative-sync parallel execution for [`Simulation`] — the
//! rdma-verbs instantiation of the `pdes` engine design.
//!
//! # How a round works
//!
//! With lookahead `L` (the minimum cross-host propagation latency —
//! fiber link latency in fabric mode, wire propagation plus switch
//! latency in the legacy point-to-point world), every already-queued
//! event in the window `[t0, t0 + L)` is *causally independent across
//! hosts*: nothing a NIC does at time `t` inside the window can reach
//! another NIC before the window ends. Each round therefore:
//!
//! 1. pops the window's batch off the real queue, remembering each
//!    event's real insertion sequence number;
//! 2. partitions per-NIC events (`Nic`, `Deliver`) onto worker *groups*
//!    — hosts connected by a shared app footprint are merged so a group
//!    is touched by exactly one worker;
//! 3. workers replay their group's events against the checked-out
//!    [`Rnic`]s in `(time, seq)` order, *cooking* every side effect
//!    (schedules, transmits, completions) into an ordered output stream
//!    instead of applying it;
//! 4. the coordinator merges raw events (hops, timers, app CQEs) and
//!    worker streams on one heap keyed by `(time, seq)` — real
//!    sequence numbers for batch events, *virtual* ones (assigned in
//!    merge order, exactly as the global queue would have) for events
//!    generated mid-round — and applies everything in that order.
//!
//! The merge key reproduces the sequential engine's `(time, insertion
//! seq)` order bit-for-bit, so event-order digests, RNG draws, fault
//! traces, counters and artifact bytes are identical at every worker
//! count; the sequential path stays the differential oracle.
//!
//! # Send apps and barriers
//!
//! Apps registered via [`Simulation::add_send_app`] ship to the worker
//! that owns their host group, exactly like NICs: their batch
//! `Timer`/`AppCqe` events partition onto the group, the worker runs the
//! callbacks against a restricted [`Ctx`] (checked-out NICs, cooked
//! timers and doorbells — no world RNG, no fabric-wide controls), and
//! completions on their QPs materialize worker-side with no
//! synchronization at all.
//!
//! Coordinator apps ([`Simulation::add_app`]) keep full capabilities —
//! the world RNG, `stop`, fabric controls — at a price: a batch
//! `Timer`/`AppCqe` for such an app *barriers* its host group. The
//! group's worker stops before the callback's `(time, seq)` key and
//! every remaining event runs coordinator-side in plain merge order.
//! Completions on QPs owned by a coordinator app raise the same barrier
//! mid-window, since they materialize an `AppCqe` at the completion
//! time.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

use ragnar_telemetry::profile::{self, Phase};
use ragnar_telemetry::Target;
use rnic_model::{Cqe, NicAction, NicEvent, Packet, PacketArena, PacketHandle, QpNum, Rnic};
use sim_core::{FxHashMap, SimDuration, SimTime};

use super::{
    App, AppBox, AppId, Ctx, CtxWorld, HostId, QpHandle, RoundCtl, RoundItem, RoundKeyed,
    Simulation, VerbsError, WorkRequest, WorkerBackend, World, WorldEvent,
};

/// One partition group's slice of a round's window batch, in real
/// `(time, seq)` order.
type GroupEntries = Vec<(SimTime, u64, HostId, WPayload)>;

/// Worker-side merge key: `(time, tier, n)` where tier 0 carries real
/// batch sequence numbers and tier 1 the worker's own emit counter.
/// Batch events always sort before same-timestamp generated events,
/// exactly like real seqs sort before the round's virtual seqs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct WKey {
    at: SimTime,
    tier: u8,
    n: u64,
}

/// A worker-digestible event: per-NIC traffic, or a shipped send app's
/// callback.
///
/// Packets cross the thread boundary *by value*: world-arena handles
/// mean nothing on a worker, so the ship-time conversion detaches the
/// packet from the world arena and the worker re-attaches it into its
/// round-local arena the moment it processes the event (and the
/// coordinator into the world arena, for leftovers and orphans the
/// barrier bounced back). Inside the worker heap every payload stays in
/// this detached form — the kitchen detaches generated events on the
/// way in — so drain-back needs no arena surgery.
enum WPayload {
    /// NIC pipeline event; when the event names a packet, the packet
    /// rides alongside and the event's own handle is dangling until
    /// re-attachment.
    NicEv(NicEvent, Option<Packet>),
    Deliver {
        pkt: Packet,
        corrupt: bool,
    },
    Timer {
        app: AppId,
        token: u64,
    },
    Cqe {
        app: AppId,
        cqe: Cqe,
    },
}

impl WPayload {
    fn kind(&self) -> EvKind {
        match self {
            WPayload::NicEv(..) => EvKind::NicEv,
            WPayload::Deliver { corrupt: false, .. } => EvKind::DeliverOk,
            WPayload::Deliver { corrupt: true, .. } => EvKind::DeliverCorrupt,
            WPayload::Timer { app, token } => EvKind::Timer {
                app: *app,
                token: *token,
            },
            WPayload::Cqe { app, .. } => EvKind::Cqe { app: *app },
        }
    }
}

/// Pulls the packet a NIC event names out of `arena`, leaving the
/// event's handle dangling — the ship-time half of the detach/attach
/// pair. `None` for events that carry no packet.
fn detach_nic_event(arena: &mut PacketArena, ev: &mut NicEvent) -> Option<Packet> {
    ev.packet_handle_mut().map(|h| {
        let pkt = arena.take(*h);
        *h = PacketHandle::DANGLING;
        pkt
    })
}

/// Re-homes a detached NIC event's packet into `arena`, patching the
/// event's handle — the processing-time half of the detach/attach pair.
fn attach_nic_event(arena: &mut PacketArena, ev: &mut NicEvent, pkt: Option<Packet>) {
    if let Some(p) = pkt {
        *ev.packet_handle_mut()
            .expect("sidecar implies a handle slot") = arena.insert(p);
    }
}

struct WItem {
    key: WKey,
    host: HostId,
    payload: WPayload,
}

impl PartialEq for WItem {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for WItem {}
impl PartialOrd for WItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// Where a processed event came from: the popped batch (real seq) or
/// the worker's own emissions (emit id, mapped to a virtual seq by the
/// coordinator at apply time).
enum Src {
    Batch,
    Gen,
}

#[derive(Clone, Copy)]
enum EvKind {
    NicEv,
    DeliverOk,
    DeliverCorrupt,
    Timer { app: AppId, token: u64 },
    Cqe { app: AppId },
}

/// A side effect the worker recorded instead of applying.
enum Cooked {
    /// A generated event (NIC schedule, send-app timer, or a completion
    /// owned by a shipped app) landing inside the window: the worker
    /// queued it locally under `emit`; the coordinator only assigns the
    /// matching virtual seq (or materializes the event, if the worker's
    /// barrier preempted it).
    SchedLocal { emit: u64 },
    /// A generated event beyond the window: goes to the real queue
    /// (packet detached; the coordinator re-attaches into the world
    /// arena).
    SchedOut {
        at: SimTime,
        host: HostId,
        payload: WPayload,
    },
    /// `NicAction::Transmit`: replayed by the coordinator so fabric
    /// routing, loss/chaos RNG draws and hop scheduling happen in exact
    /// merge order. The packet travels by value and re-enters the world
    /// arena at replay.
    Transmit {
        at: SimTime,
        host: HostId,
        pkt: Packet,
    },
    /// `NicAction::Complete` on a QP not owned by an app shipped to this
    /// worker: `emit` is set when a coordinator app owns the QP (the
    /// coordinator materializes the `AppCqe` behind the barrier this
    /// raised); unowned CQEs join `orphan_cqes` at their merge position.
    Complete {
        emit: Option<u64>,
        at: SimTime,
        host: HostId,
        cqe: Cqe,
    },
}

/// One processed event in the worker's output stream, in processing
/// order, with its cooked side effects.
struct OutEntry {
    src: Src,
    /// Merge key second component: the real seq for batch events, the
    /// emit id for generated ones.
    n: u64,
    at: SimTime,
    host: HostId,
    kind: EvKind,
    cooked: Vec<Cooked>,
}

/// Work shipped to one worker: a host group's window slice plus the
/// checked-out NICs and send apps.
struct GroupWork {
    group: u32,
    limit: SimTime,
    /// Stop before this `(time, seq)` batch key, if the group has a
    /// coordinator-app event in the window.
    barrier: Option<(SimTime, u64)>,
    nics: Vec<(HostId, Rnic)>,
    /// Round-local packet arena, pre-seeded with the packets still
    /// queued in the checked-out NICs' egress schedulers (their handles
    /// were re-homed at checkout).
    arena: PacketArena,
    /// Send apps whose scope lives in this group, with their scopes.
    apps: Vec<(AppId, Vec<HostId>, Box<dyn App + Send>)>,
    entries: Vec<(SimTime, u64, HostId, WPayload)>,
}

struct GroupOut {
    group: u32,
    nics: Vec<(HostId, Rnic)>,
    /// The round-local arena, holding exactly the packets still queued
    /// in the returned NICs' egress schedulers; the coordinator re-homes
    /// them back into the world arena.
    arena: PacketArena,
    apps: Vec<(AppId, Box<dyn App + Send>)>,
    stream: Vec<OutEntry>,
    /// Batch events the barrier preempted, returned unprocessed (in
    /// detached form).
    leftovers: Vec<(SimTime, u64, HostId, WPayload)>,
    /// Locally-queued generated events the barrier preempted:
    /// `(emit, at, host, payload)`, in detached form.
    orphans: Vec<(u64, SimTime, HostId, WPayload)>,
}

/// The worker's shared cooking state: where generated events and side
/// effects go. Borrowed field-wise so NIC processing and the send-app
/// `Ctx` backend use one code path.
struct Kitchen<'k> {
    limit: SimTime,
    heap: &'k mut BinaryHeap<Reverse<WItem>>,
    emit: &'k mut u64,
    barrier: &'k mut Option<WKey>,
    /// The round-local arena: generated events detach their packets out
    /// of it on the way into the heap, transmits take them out for the
    /// coordinator replay.
    arena: &'k mut PacketArena,
    qp_owner: &'k FxHashMap<(HostId, QpNum), AppId>,
    /// Send apps shipped to this worker: completions on their QPs
    /// materialize locally instead of barriering.
    group_apps: &'k HashSet<AppId>,
}

impl Kitchen<'_> {
    /// Queues a generated event: locally when inside the window (the
    /// coordinator reserves the matching virtual seq at apply time),
    /// otherwise out to the real queue.
    fn sched(&mut self, at: SimTime, host: HostId, payload: WPayload, out: &mut Vec<Cooked>) {
        if at <= self.limit {
            let e = *self.emit;
            *self.emit += 1;
            self.heap.push(Reverse(WItem {
                key: WKey { at, tier: 1, n: e },
                host,
                payload,
            }));
            out.push(Cooked::SchedLocal { emit: e });
        } else {
            out.push(Cooked::SchedOut { at, host, payload });
        }
    }

    fn cook(&mut self, host: HostId, action: NicAction, out: &mut Vec<Cooked>) {
        match action {
            NicAction::Schedule { at, mut event } => {
                let pkt = detach_nic_event(self.arena, &mut event);
                self.sched(at, host, WPayload::NicEv(event, pkt), out);
            }
            NicAction::Transmit { at, pkt } => {
                let pkt = self.arena.take(pkt);
                out.push(Cooked::Transmit { at, host, pkt });
            }
            NicAction::Complete { at, cqe } => match self.qp_owner.get(&(host, cqe.qp)) {
                // The owning send app runs on this worker: its callback
                // replays here in (time, emit) order — no barrier.
                Some(app) if self.group_apps.contains(app) => {
                    self.sched(at, host, WPayload::Cqe { app: *app, cqe }, out);
                }
                // Coordinator-app owner: the materialized AppCqe is a
                // coordinator callback; barrier the group at its key.
                Some(_) => {
                    let e = *self.emit;
                    *self.emit += 1;
                    let k = WKey { at, tier: 1, n: e };
                    if (*self.barrier).is_none_or(|b| k < b) {
                        *self.barrier = Some(k);
                    }
                    out.push(Cooked::Complete {
                        emit: Some(e),
                        at,
                        host,
                        cqe,
                    });
                }
                None => out.push(Cooked::Complete {
                    emit: None,
                    at,
                    host,
                    cqe,
                }),
            },
        }
    }
}

/// The [`WorkerBackend`] behind a shipped send app's [`Ctx`]: verbs hit
/// the checked-out NICs, side effects go through the [`Kitchen`].
struct Wb<'k> {
    now: SimTime,
    limit: SimTime,
    scope: &'k [HostId],
    nics: &'k mut Vec<(HostId, Rnic)>,
    heap: &'k mut BinaryHeap<Reverse<WItem>>,
    emit: &'k mut u64,
    barrier: &'k mut Option<WKey>,
    arena: &'k mut PacketArena,
    qp_owner: &'k FxHashMap<(HostId, QpNum), AppId>,
    group_apps: &'k HashSet<AppId>,
    scratch: &'k mut Vec<NicAction>,
    cooked: &'k mut Vec<Cooked>,
}

impl WorkerBackend for Wb<'_> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn scope(&self) -> &[HostId] {
        self.scope
    }

    fn set_timer(&mut self, app: AppId, delay: SimDuration, token: u64) {
        let at = self.now + delay;
        // Timers carry no host; file them under the scope's first host
        // (any group member works — the merge key ignores it).
        let home = self
            .scope
            .first()
            .copied()
            .expect("send app scope is non-empty");
        let mut kitchen = Kitchen {
            limit: self.limit,
            heap: &mut *self.heap,
            emit: &mut *self.emit,
            barrier: &mut *self.barrier,
            arena: &mut *self.arena,
            qp_owner: self.qp_owner,
            group_apps: self.group_apps,
        };
        kitchen.sched(at, home, WPayload::Timer { app, token }, self.cooked);
    }

    fn post_send(&mut self, qp: QpHandle, wr: WorkRequest) -> Result<(), VerbsError> {
        let now = self.now;
        let mut scratch = std::mem::take(self.scratch);
        let res = {
            let nic = self
                .nics
                .iter_mut()
                .find(|(h, _)| *h == qp.host)
                .map(|(_, n)| n)
                .expect("scope host checked out to this worker");
            nic.post_send_into(now, qp.qp, wr.into_wqe(), &mut scratch)
        };
        if res.is_ok() {
            let mut kitchen = Kitchen {
                limit: self.limit,
                heap: &mut *self.heap,
                emit: &mut *self.emit,
                barrier: &mut *self.barrier,
                arena: &mut *self.arena,
                qp_owner: self.qp_owner,
                group_apps: self.group_apps,
            };
            for action in scratch.drain(..) {
                kitchen.cook(qp.host, action, self.cooked);
            }
        }
        scratch.clear();
        *self.scratch = scratch;
        res.map_err(VerbsError::from)
    }

    fn nic(&self, host: HostId) -> &Rnic {
        &self
            .nics
            .iter()
            .find(|(h, _)| *h == host)
            .expect("scope host checked out to this worker")
            .1
    }

    fn nic_mut(&mut self, host: HostId) -> &mut Rnic {
        &mut self
            .nics
            .iter_mut()
            .find(|(h, _)| *h == host)
            .expect("scope host checked out to this worker")
            .1
    }
}

/// Replays one group's window slice, cooking side effects.
fn process_group(work: GroupWork, qp_owner: &FxHashMap<(HostId, QpNum), AppId>) -> GroupOut {
    let _p = profile::enter(Phase::OutCook);
    let GroupWork {
        group,
        limit,
        barrier,
        mut nics,
        mut arena,
        apps,
        entries,
    } = work;
    let mut heap: BinaryHeap<Reverse<WItem>> = entries
        .into_iter()
        .map(|(at, seq, host, payload)| {
            Reverse(WItem {
                key: WKey {
                    at,
                    tier: 0,
                    n: seq,
                },
                host,
                payload,
            })
        })
        .collect();
    let mut barrier: Option<WKey> = barrier.map(|(at, seq)| WKey {
        at,
        tier: 0,
        n: seq,
    });
    let group_apps: HashSet<AppId> = apps.iter().map(|(a, _, _)| *a).collect();
    let mut app_map: HashMap<AppId, (Vec<HostId>, Box<dyn App + Send>)> = apps
        .into_iter()
        .map(|(a, scope, b)| (a, (scope, b)))
        .collect();
    let mut emit = 0u64;
    let mut scratch: Vec<NicAction> = Vec::new();
    let mut stream = Vec::new();
    while let Some(Reverse(top)) = heap.peek() {
        if barrier.is_some_and(|b| top.key >= b) {
            break;
        }
        let Reverse(item) = heap.pop().expect("peeked");
        let at = item.key.at;
        let host = item.host;
        let src = match item.key.tier {
            0 => Src::Batch,
            _ => Src::Gen,
        };
        let n = item.key.n;
        let kind = item.payload.kind();
        let mut cooked = Vec::new();
        match item.payload {
            WPayload::Deliver { pkt, corrupt: true } => {
                // ICRC rejection mutates only the receiver's counter;
                // the fabric-wide ledger advances at merge time. The
                // mangled packet dies here, owned.
                drop(pkt);
                let slot = nics
                    .iter_mut()
                    .find(|(h, _)| *h == host)
                    .expect("host NIC in group");
                slot.1.counters_mut().icrc_rx_dropped += 1;
            }
            WPayload::Deliver {
                pkt,
                corrupt: false,
            } => {
                let hp = arena.insert(pkt);
                let slot = nics
                    .iter_mut()
                    .find(|(h, _)| *h == host)
                    .expect("host NIC in group");
                slot.1.handle_into(
                    at,
                    NicEvent::IngressArrival { pkt: hp },
                    &mut arena,
                    &mut scratch,
                );
            }
            WPayload::NicEv(mut ev, pkt) => {
                attach_nic_event(&mut arena, &mut ev, pkt);
                let slot = nics
                    .iter_mut()
                    .find(|(h, _)| *h == host)
                    .expect("host NIC in group");
                slot.1.handle_into(at, ev, &mut arena, &mut scratch);
            }
            WPayload::Timer { app, token } => {
                let (scope, mut a) = app_map
                    .remove(&app)
                    .expect("send app shipped with its group");
                let mut wb = Wb {
                    now: at,
                    limit,
                    scope: &scope,
                    nics: &mut nics,
                    heap: &mut heap,
                    emit: &mut emit,
                    barrier: &mut barrier,
                    arena: &mut arena,
                    qp_owner,
                    group_apps: &group_apps,
                    scratch: &mut scratch,
                    cooked: &mut cooked,
                };
                let mut ctx = Ctx {
                    world: CtxWorld::Worker(&mut wb),
                    app,
                };
                a.on_timer(&mut ctx, token);
                app_map.insert(app, (scope, a));
            }
            WPayload::Cqe { app, cqe } => {
                let (scope, mut a) = app_map
                    .remove(&app)
                    .expect("send app shipped with its group");
                let mut wb = Wb {
                    now: at,
                    limit,
                    scope: &scope,
                    nics: &mut nics,
                    heap: &mut heap,
                    emit: &mut emit,
                    barrier: &mut barrier,
                    arena: &mut arena,
                    qp_owner,
                    group_apps: &group_apps,
                    scratch: &mut scratch,
                    cooked: &mut cooked,
                };
                let mut ctx = Ctx {
                    world: CtxWorld::Worker(&mut wb),
                    app,
                };
                a.on_cqe(&mut ctx, host, cqe);
                app_map.insert(app, (scope, a));
            }
        }
        if !scratch.is_empty() {
            cooked.reserve(scratch.len());
            let mut kitchen = Kitchen {
                limit,
                heap: &mut heap,
                emit: &mut emit,
                barrier: &mut barrier,
                arena: &mut arena,
                qp_owner,
                group_apps: &group_apps,
            };
            for action in scratch.drain(..) {
                kitchen.cook(host, action, &mut cooked);
            }
        }
        stream.push(OutEntry {
            src,
            n,
            at,
            host,
            kind,
            cooked,
        });
    }
    // Heap payloads are already in detached form (batch entries stay
    // detached until processed; the kitchen detaches generated ones on
    // the way in), so the barrier's survivors travel back as-is. The
    // local arena keeps only the packets still queued in the NICs'
    // egress schedulers; the coordinator re-homes those.
    let mut leftovers = Vec::new();
    let mut orphans = Vec::new();
    for Reverse(item) in heap {
        let at = item.key.at;
        let host = item.host;
        match item.key.tier {
            0 => leftovers.push((at, item.key.n, host, item.payload)),
            _ => orphans.push((item.key.n, at, host, item.payload)),
        }
    }
    GroupOut {
        group,
        nics,
        arena,
        apps: app_map.into_iter().map(|(a, (_, b))| (a, b)).collect(),
        stream,
        leftovers,
        orphans,
    }
}

/// Default adaptive-granularity threshold: a partition group whose
/// window batch holds fewer than this many events is cheaper to execute
/// coordinator-side than to ship (channel hop, NIC checkout, per-group
/// stream merge all cost more than replaying a handful of events).
/// Tunable per simulation via
/// [`Simulation::set_parallel_ship_threshold`]; zero ships everything.
pub(super) const DEFAULT_SHIP_THRESHOLD: usize = 16;

/// Base length, in lookahead windows, of the sequential stretch run
/// after a round ships nothing; consecutive empty probes double it (to
/// a 16x cap), so sparse phases cost ever fewer wasted probe rounds
/// while dense traffic re-engages the workers within microseconds.
const SEQ_STRETCH_WINDOWS: u64 = 8;

impl World {
    /// Re-homes a detached worker payload's packet into the world arena
    /// and rebuilds the world event — the coordinator-side inverse of
    /// the ship-time detach.
    fn attach_payload(&mut self, host: HostId, payload: WPayload) -> WorldEvent {
        match payload {
            WPayload::NicEv(mut ev, pkt) => {
                attach_nic_event(&mut self.arena, &mut ev, pkt);
                WorldEvent::Nic(host, ev)
            }
            WPayload::Deliver { pkt, corrupt } => WorldEvent::Deliver {
                host,
                pkt: self.arena.insert(pkt),
                corrupt,
            },
            WPayload::Timer { app, token } => WorldEvent::Timer { app, token },
            WPayload::Cqe { app, cqe } => WorldEvent::AppCqe { app, host, cqe },
        }
    }

    /// The conservative lookahead: the minimum latency any NIC-to-NIC
    /// effect must cross. `None` when the fabric provides no positive
    /// bound (no hosts, or a zero-latency link).
    pub(super) fn lookahead(&self) -> Option<SimDuration> {
        let l = if let Some(rt) = self.fabric_rt.as_ref() {
            rt.topology().links().iter().map(|l| l.latency).min()?
        } else {
            self.nics
                .iter()
                .flatten()
                .map(|n| n.profile().wire_propagation + self.switch_latency)
                .min()?
        };
        (!l.is_zero()).then_some(l)
    }

    /// Union-find over app footprints: hosts sharing an app land in one
    /// group so a single worker owns every NIC that app may touch.
    pub(super) fn host_groups(&self) -> Vec<u32> {
        let n = self.nics.len();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                let up = parent[parent[x as usize] as usize];
                parent[x as usize] = up;
                x = up;
            }
            x
        }
        for scope in self.app_scopes.values() {
            for w in scope.windows(2) {
                let a = find(&mut parent, w[0].0);
                let b = find(&mut parent, w[1].0);
                parent[a.max(b) as usize] = a.min(b);
            }
        }
        (0..n as u32).map(|i| find(&mut parent, i)).collect()
    }
}

impl Simulation {
    /// Whether this configuration can run on the parallel engine
    /// without observable divergence. Telemetry consumers see events in
    /// wall-clock emission order, so any enabled hot-path tracing or
    /// metrics forces the sequential oracle; likewise apps without a
    /// declared scope (their footprint is unknown) and QP ownerships
    /// pointing outside the owner's scope.
    fn parallel_eligible(&self) -> bool {
        let w = &self.world;
        if w.nics.is_empty() {
            return false;
        }
        if w.metrics.enabled() {
            return false;
        }
        // Online invariant monitors want one coherent world state per
        // event — and a run whose invariants are in question belongs on
        // the sequential oracle anyway.
        if w.monitors.is_some() {
            return false;
        }
        for t in [
            Target::SimCore,
            Target::RnicModel,
            Target::RdmaVerbs,
            Target::Chaos,
        ] {
            if w.tracer.enabled(t) {
                return false;
            }
        }
        if (0..self.apps.len()).any(|i| !w.app_scopes.contains_key(&AppId(i))) {
            return false;
        }
        for ((host, _), app) in &w.qp_owner {
            if !w.app_scopes.get(app).is_some_and(|s| s.contains(host)) {
                return false;
            }
        }
        true
    }

    /// Runs the event loop until `deadline` on `workers` threads,
    /// producing bit-identical results to [`Simulation::run_until`] —
    /// same digests, counters, fault traces and artifact bytes at every
    /// worker count. Falls back to the sequential engine when
    /// `workers <= 1` or the configuration is not
    /// [eligible](Simulation::parallel_eligible).
    ///
    /// Returns the number of events processed.
    pub fn run_until_workers(&mut self, deadline: SimTime, workers: usize) -> u64 {
        self.supervisor = None;
        if workers <= 1 || !self.parallel_eligible() {
            return self.run_until(deadline);
        }
        let Some(lookahead) = self.world.lookahead() else {
            return self.run_until(deadline);
        };
        self.start_apps();
        if self.world.stopped {
            return 0;
        }
        self.world.ensure_lane_tracker();
        let before = self.events_processed();
        let host_group = self.world.host_groups();
        let app_group: HashMap<AppId, u32> = self
            .world
            .app_scopes
            .iter()
            .filter_map(|(app, scope)| scope.first().map(|h0| (*app, host_group[h0.0 as usize])))
            .collect();
        // Send apps ship with their group whenever the group has window
        // work, so worker-materialized completions always find their
        // owner on the same thread.
        let mut group_send_apps: HashMap<u32, Vec<(AppId, Vec<HostId>)>> = HashMap::new();
        for (app, g) in &app_group {
            if self.world.app_sendable.get(app.0).copied().unwrap_or(false) {
                let scope = self.world.app_scopes[app].clone();
                group_send_apps.entry(*g).or_default().push((*app, scope));
            }
        }
        for v in group_send_apps.values_mut() {
            v.sort_by_key(|(a, _)| a.0);
        }
        let qp_owner = self.world.qp_owner.clone();
        // Never oversubscribe the machine: extra threads beyond the
        // available cores only add context-switch overhead, and the
        // results are worker-count invariant by construction.
        let threads = workers
            .min(std::thread::available_parallelism().map_or(1, |n| n.get()))
            .max(1);
        // Ambient supervision (installed by the harness): worker faults
        // are caught, quarantined and healed instead of tearing the run
        // down. When the policy carries an injected-fault hook, drop the
        // ship threshold for the duration so every group batch actually
        // crosses a worker boundary — otherwise small runs inline
        // everything and the injected faults never meet a job.
        let supervision = pdes::ambient_supervision();
        let saved_threshold = match &supervision {
            Some(p) if p.fault_hook.is_some() => {
                Some(std::mem::replace(&mut self.world.ship_threshold, 0))
            }
            _ => None,
        };
        let mut replayed = 0u64;
        let mut sup_health = None;
        let sim = &mut *self;
        let work = |_worker: usize, jobs: Vec<GroupWork>| -> Vec<GroupOut> {
            jobs.into_iter()
                .map(|job| process_group(job, &qp_owner))
                .collect()
        };
        let mut drive_loop = |run: &mut dyn FnMut(Vec<Vec<GroupWork>>) -> Vec<Vec<GroupOut>>| {
            // Adaptive engine selection: a round that ships nothing
            // pays the whole protocol (batch pop, partition, merge
            // heap) for work the plain sequential loop does cheaper.
            // After such a round the next few windows run
            // sequentially, then a round probes the density again.
            // Which engine processes a window never changes results
            // — only wall clock — because a conservative window is
            // causally self-contained either way.
            let mut stretch: u64 = 0;
            let mut backoff = SEQ_STRETCH_WINDOWS;
            while let Some(t0) = sim.world.queue.peek_time() {
                if t0 > deadline {
                    break;
                }
                if stretch > 0 {
                    let limit = SimTime::from_picos(
                        t0.as_picos().saturating_add(stretch * lookahead.as_picos()) - 1,
                    )
                    .min(deadline);
                    stretch = 0;
                    while !sim.world.stopped {
                        let Some((at, event)) = sim.world.queue.pop_before(limit) else {
                            break;
                        };
                        sim.world.fold_event(at, &event);
                        sim.execute_event(event);
                    }
                    if sim.world.stopped {
                        break;
                    }
                    continue;
                }
                let shipped = sim.round(
                    t0,
                    deadline,
                    lookahead,
                    &host_group,
                    &app_group,
                    &group_send_apps,
                    threads,
                    run,
                );
                if shipped == 0 {
                    // Exponential backoff on consecutive empty
                    // probes: sparse phases cost ever fewer wasted
                    // rounds, while one shipped round snaps the
                    // probe cadence back to tight.
                    stretch = backoff;
                    backoff = (backoff * 2).min(SEQ_STRETCH_WINDOWS * 16);
                } else {
                    backoff = SEQ_STRETCH_WINDOWS;
                }
            }
        };
        match supervision {
            None => pdes::pool::scoped(threads, work, |run| drive_loop(run)),
            Some(policy) => {
                // Inline replay of a returned batch runs the exact same
                // pure `process_group` a healthy worker would have run —
                // the coordinator *is* the sequential oracle, so digests
                // stay bit-identical through any fault schedule.
                let qp_owner_replay = qp_owner.clone();
                let snap = pdes::pool::scoped_supervised(threads, policy, work, |run, health| {
                    let mut adapter = |batches: Vec<Vec<GroupWork>>| -> Vec<Vec<GroupOut>> {
                        run(batches)
                            .into_iter()
                            .map(|outcome| match outcome {
                                pdes::JobOutcome::Done(outs) => outs,
                                pdes::JobOutcome::Returned(jobs, _fault) => {
                                    replayed += jobs.len() as u64;
                                    jobs.into_iter()
                                        .map(|j| process_group(j, &qp_owner_replay))
                                        .collect()
                                }
                                pdes::JobOutcome::Lost(fault) => {
                                    panic!("rdma-verbs worker batch unrecoverable: {fault}")
                                }
                            })
                            .collect()
                    };
                    drive_loop(&mut adapter);
                    health.snapshot()
                });
                sup_health = Some(snap);
            }
        }
        if let Some(t) = saved_threshold {
            self.world.ship_threshold = t;
        }
        self.supervisor = sup_health.map(|health| super::SupervisorStats {
            health,
            replayed_jobs: replayed,
        });
        self.world.flush_lanes();
        self.events_processed() - before
    }

    /// Executes one conservative round starting at `t0`; returns the
    /// number of events shipped to workers (zero when every group fell
    /// under the ship threshold — the caller's cue to try the plain
    /// sequential loop for the next stretch).
    #[allow(clippy::too_many_arguments)]
    fn round(
        &mut self,
        t0: SimTime,
        deadline: SimTime,
        lookahead: SimDuration,
        host_group: &[u32],
        app_group: &HashMap<AppId, u32>,
        group_send_apps: &HashMap<u32, Vec<(AppId, Vec<HostId>)>>,
        workers: usize,
        run: &mut dyn FnMut(Vec<Vec<GroupWork>>) -> Vec<Vec<GroupOut>>,
    ) -> usize {
        // Window end, inclusive: strictly before t0 + lookahead.
        let limit = SimTime::from_picos(t0.as_picos().saturating_add(lookahead.as_picos()) - 1)
            .min(deadline);

        // Pop the window's batch, keeping real insertion seqs.
        let mut batch: Vec<(SimTime, u64, WorldEvent)> = Vec::new();
        let mut max_seq = 0u64;
        while let Some((at, seq, ev)) = self.world.queue.pop_with_seq_before(limit) {
            max_seq = max_seq.max(seq);
            batch.push((at, seq, ev));
        }
        let vseq_base = max_seq + 1;

        // Coordinator-app events barrier their host group at the
        // earliest key; send-app events partition like host events.
        let mut barriers: HashMap<u32, (SimTime, u64)> = HashMap::new();
        for (at, seq, ev) in &batch {
            let app = match ev {
                WorldEvent::Timer { app, .. } => Some(*app),
                WorldEvent::AppCqe { app, .. } => Some(*app),
                _ => None,
            };
            let app = app.filter(|a| !self.world.app_sendable.get(a.0).copied().unwrap_or(false));
            if let Some(g) = app.and_then(|a| app_group.get(&a)) {
                let e = barriers.entry(*g).or_insert((*at, *seq));
                if (*at, *seq) < *e {
                    *e = (*at, *seq);
                }
            }
        }

        // Partition: pre-barrier host and send-app events go to workers,
        // the rest stays raw for the coordinator.
        let mut raw: Vec<(SimTime, u64, WorldEvent)> = Vec::new();
        let mut per_group: HashMap<u32, GroupEntries> = HashMap::new();
        for (at, seq, ev) in batch {
            // Each event's destination group and worker payload — or the
            // event itself, when only the coordinator can run it.
            let routed: Result<(u32, HostId, WPayload), WorldEvent> = match ev {
                WorldEvent::Nic(h, mut e) => {
                    let pkt = detach_nic_event(&mut self.world.arena, &mut e);
                    Ok((host_group[h.0 as usize], h, WPayload::NicEv(e, pkt)))
                }
                WorldEvent::Deliver { host, pkt, corrupt } => {
                    let pkt = self.world.arena.take(pkt);
                    Ok((
                        host_group[host.0 as usize],
                        host,
                        WPayload::Deliver { pkt, corrupt },
                    ))
                }
                WorldEvent::Timer { app, token }
                    if self.world.app_sendable.get(app.0).copied().unwrap_or(false) =>
                {
                    let home = self
                        .world
                        .app_scopes
                        .get(&app)
                        .and_then(|s| s.first().copied());
                    match app_group.get(&app).copied().zip(home) {
                        Some((g, home)) => Ok((g, home, WPayload::Timer { app, token })),
                        None => Err(WorldEvent::Timer { app, token }),
                    }
                }
                WorldEvent::AppCqe { app, host, cqe }
                    if self.world.app_sendable.get(app.0).copied().unwrap_or(false) =>
                {
                    match app_group.get(&app).copied() {
                        Some(g) => Ok((g, host, WPayload::Cqe { app, cqe })),
                        None => Err(WorldEvent::AppCqe { app, host, cqe }),
                    }
                }
                other => Err(other),
            };
            match routed {
                Ok((g, h, payload)) if barriers.get(&g).is_none_or(|b| (at, seq) < *b) => {
                    per_group.entry(g).or_default().push((at, seq, h, payload));
                }
                Ok((_, h, payload)) => {
                    let ev = self.world.attach_payload(h, payload);
                    raw.push((at, seq, ev));
                }
                Err(ev) => raw.push((at, seq, ev)),
            }
        }

        // Adaptive granularity: a group whose window batch is too small
        // to amortize the shipping overhead executes coordinator-side
        // through the same code path as post-barrier leftovers — the
        // merge heap orders its events by their real `(time, seq)` keys,
        // so the result is bit-identical either way.
        // With a single pool thread (a one-core machine, after the
        // oversubscription clamp) shipping can never overlap with
        // coordinator work, so every group inlines and the adaptive
        // stretches hand the run to the plain sequential loop — unless
        // a zero threshold explicitly forces the shipping path (the
        // differential suite does, to keep it exercised everywhere).
        let threshold = match self.world.ship_threshold {
            0 => 0,
            _ if workers == 1 => usize::MAX,
            t => t,
        };
        if threshold > 1 {
            // `retain` can't reach `self.world`, so drain the under-
            // threshold groups in two steps: collect, then re-attach.
            let mut inlined: Vec<(SimTime, u64, HostId, WPayload)> = Vec::new();
            per_group.retain(|_, entries| {
                if entries.len() >= threshold {
                    return true;
                }
                inlined.append(entries);
                false
            });
            for (at, seq, h, payload) in inlined {
                let ev = self.world.attach_payload(h, payload);
                raw.push((at, seq, ev));
            }
        }

        // Ship groups to workers (round-robin bundling amortizes the
        // channel round-trip), checking their NICs out of the world.
        let mut groups: Vec<(u32, GroupEntries)> = per_group.into_iter().collect();
        groups.sort_by_key(|(g, _)| *g);
        let mut buckets: Vec<Vec<GroupWork>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, (g, entries)) in groups.into_iter().enumerate() {
            let mut hosts: Vec<HostId> = entries.iter().map(|e| e.2).collect();
            // Check out the group's send apps, and every scope host of
            // theirs: callbacks may post to scope hosts that had no
            // batch events this window.
            let mut apps: Vec<(AppId, Vec<HostId>, Box<dyn App + Send>)> = Vec::new();
            if let Some(list) = group_send_apps.get(&g) {
                for (app, scope) in list {
                    hosts.extend(scope.iter().copied());
                    let boxed = match self.apps[app.0].take() {
                        Some(AppBox::Send(a)) => a,
                        _ => unreachable!("send app missing at checkout"),
                    };
                    apps.push((*app, scope.clone(), boxed));
                }
            }
            hosts.sort_by_key(|h| h.0);
            hosts.dedup();
            // Packets still waiting on arbitration travel with their
            // NIC: re-home them from the world arena into the group's
            // round-local arena.
            let mut arena = PacketArena::new();
            let nics = hosts
                .into_iter()
                .map(|h| {
                    let mut nic = self.world.nics[h.0 as usize]
                        .take()
                        .expect("NIC double checkout");
                    nic.rehome_egress(&mut self.world.arena, &mut arena);
                    (h, nic)
                })
                .collect();
            buckets[i % workers].push(GroupWork {
                group: g,
                limit,
                barrier: barriers.get(&g).copied(),
                nics,
                arena,
                apps,
                entries,
            });
        }
        let shipped: usize = buckets
            .iter()
            .flat_map(|b| b.iter())
            .map(|g| g.entries.len())
            .sum();
        // An all-inlined round skips the pool entirely — no thread
        // wakeups for work the coordinator already holds.
        buckets.retain(|b| !b.is_empty());
        let mut outs: Vec<GroupOut> = if buckets.is_empty() {
            Vec::new()
        } else {
            run(buckets).into_iter().flatten().collect()
        };
        // Return NICs and apps before the merge: post-barrier leftovers
        // and materialized orphans execute coordinator-side and must
        // find both at home. Egress-queued packets re-home back into the
        // world arena, after which the round-local arena must be empty —
        // every other packet either terminated worker-side or travels
        // onward by value (cooked transmits, leftovers, orphans).
        for out in &mut outs {
            let mut arena = std::mem::take(&mut out.arena);
            for (h, mut nic) in out.nics.drain(..) {
                nic.rehome_egress(&mut arena, &mut self.world.arena);
                self.world.nics[h.0 as usize] = Some(nic);
            }
            debug_assert_eq!(arena.live(), 0, "round-local arena drained at return");
            for (a, app) in out.apps.drain(..) {
                self.apps[a.0] = Some(AppBox::Send(app));
            }
        }

        // Merge phase: raw events and leftovers under their real seqs,
        // worker streams behind head-of-stream markers; generated
        // events receive virtual seqs in merge order.
        let mut heap: BinaryHeap<Reverse<RoundKeyed>> = BinaryHeap::new();
        for (at, seq, ev) in raw {
            heap.push(Reverse(RoundKeyed {
                at,
                k2: seq,
                item: RoundItem::Ev(ev),
            }));
        }
        let mut streams: Vec<(u32, VecDeque<OutEntry>)> = Vec::new();
        let mut orphan_gen: HashMap<(u32, u64), (SimTime, HostId, WPayload)> = HashMap::new();
        for out in outs {
            for (at, seq, host, payload) in out.leftovers {
                let ev = self.world.attach_payload(host, payload);
                heap.push(Reverse(RoundKeyed {
                    at,
                    k2: seq,
                    item: RoundItem::Ev(ev),
                }));
            }
            for (emit, at, host, payload) in out.orphans {
                orphan_gen.insert((out.group, emit), (at, host, payload));
            }
            if let Some(head) = out.stream.front_key() {
                let si = streams.len() as u32;
                heap.push(Reverse(RoundKeyed {
                    at: head.0,
                    k2: head.1,
                    item: RoundItem::Marker(si),
                }));
                streams.push((out.group, out.stream.into()));
            }
        }
        // Emit-id → assigned virtual seq, per stream.
        let mut emit_vseq: Vec<HashMap<u64, u64>> =
            streams.iter().map(|_| HashMap::new()).collect();

        self.world.round = Some(RoundCtl {
            limit,
            now: t0,
            vseq: vseq_base,
            heap,
        });
        let _p = profile::enter(Phase::MergeDrain);
        loop {
            let popped = {
                let r = self.world.round.as_mut().expect("round open");
                r.heap.pop()
            };
            let Some(Reverse(keyed)) = popped else { break };
            self.world.round.as_mut().expect("round open").now = keyed.at;
            match keyed.item {
                RoundItem::Ev(ev) => {
                    if keyed.k2 >= vseq_base {
                        self.world.synthetic += 1;
                    }
                    self.world.fold_event(keyed.at, &ev);
                    self.execute_event(ev);
                }
                RoundItem::Marker(si) => {
                    let (group, stream) = &mut streams[si as usize];
                    let group = *group;
                    let entry = stream.pop_front().expect("marker implies an entry");
                    debug_assert_eq!(entry.at, keyed.at);
                    if matches!(entry.src, Src::Gen) {
                        self.world.synthetic += 1;
                    }
                    // Fabric-wide ledger halves of the worker's
                    // receive-side processing.
                    match entry.kind {
                        EvKind::NicEv | EvKind::Timer { .. } | EvKind::Cqe { .. } => {}
                        EvKind::DeliverOk => self.world.fabric.delivered += 1,
                        EvKind::DeliverCorrupt => self.world.fabric.icrc_dropped += 1,
                    }
                    self.fold_worker_entry(&entry);
                    for cook in entry.cooked {
                        match cook {
                            Cooked::SchedLocal { emit } => {
                                match orphan_gen.remove(&(group, emit)) {
                                    // The worker's barrier preempted
                                    // this event: materialize it at its
                                    // virtual seq.
                                    Some((at2, host, payload)) => {
                                        let ev = self.world.attach_payload(host, payload);
                                        let v = self
                                            .world
                                            .enqueue_in_round(at2, ev)
                                            .expect("local schedule within window");
                                        emit_vseq[si as usize].insert(emit, v);
                                    }
                                    // The worker processed it: just
                                    // consume the virtual seq so later
                                    // assignments match the oracle.
                                    None => {
                                        let r = self.world.round.as_mut().expect("round open");
                                        let v = r.vseq;
                                        r.vseq += 1;
                                        emit_vseq[si as usize].insert(emit, v);
                                    }
                                }
                            }
                            Cooked::SchedOut {
                                at: at2,
                                host,
                                payload,
                            } => {
                                debug_assert!(at2 > limit);
                                let ev = self.world.attach_payload(host, payload);
                                self.world.enqueue(at2, ev);
                            }
                            Cooked::Transmit { at: at2, host, pkt } => {
                                let h = self.world.arena.insert(pkt);
                                self.world.transmit(host, at2, h);
                            }
                            Cooked::Complete {
                                emit,
                                at: at2,
                                host,
                                cqe,
                            } => match emit {
                                Some(e) => {
                                    let app = *self
                                        .world
                                        .qp_owner
                                        .get(&(host, cqe.qp))
                                        .expect("ownership checked worker-side");
                                    let ev = WorldEvent::AppCqe { app, host, cqe };
                                    if let Some(v) = self.world.enqueue_in_round(at2, ev) {
                                        emit_vseq[si as usize].insert(e, v);
                                    }
                                }
                                None => self.world.orphan_cqes.push((host, cqe)),
                            },
                        }
                    }
                    if let Some(next) =
                        stream_head(&streams[si as usize].1, &emit_vseq[si as usize])
                    {
                        let r = self.world.round.as_mut().expect("round open");
                        r.heap.push(Reverse(RoundKeyed {
                            at: next.0,
                            k2: next.1,
                            item: RoundItem::Marker(si),
                        }));
                    }
                }
            }
        }
        self.world.round = None;
        debug_assert!(orphan_gen.is_empty(), "orphaned events never applied");
        shipped
    }

    /// Folds a worker-processed event into the order digest with the
    /// exact words [`World::fold_event`] would have used.
    fn fold_worker_entry(&mut self, entry: &OutEntry) {
        if self.world.lanes.is_some() {
            // Same attribution as `World::lane_host_of`: timers bill the
            // coordinator lane, everything else its owning host.
            let host = match entry.kind {
                EvKind::Timer { .. } => None,
                _ => Some(entry.host),
            };
            self.world.note_lane(entry.at, host, 1);
        }
        let d = &mut self.world.order;
        d.fold(entry.at.as_picos());
        match entry.kind {
            EvKind::NicEv => {
                d.fold(1);
                d.fold(u64::from(entry.host.0));
            }
            EvKind::DeliverOk => {
                d.fold(2);
                d.fold(u64::from(entry.host.0));
                d.fold(0);
            }
            EvKind::DeliverCorrupt => {
                d.fold(2);
                d.fold(u64::from(entry.host.0));
                d.fold(1);
            }
            EvKind::Timer { app, token } => {
                d.fold(4);
                d.fold(app.0 as u64);
                d.fold(token);
            }
            EvKind::Cqe { app } => {
                d.fold(5);
                d.fold(app.0 as u64);
                d.fold(u64::from(entry.host.0));
            }
        }
    }
}

/// The merge key of a stream's head entry, translating generated emit
/// ids through the already-assigned virtual seqs (a parent entry is
/// always consumed before its child becomes head, so the mapping is
/// present).
fn stream_head(
    stream: &VecDeque<OutEntry>,
    emit_vseq: &HashMap<u64, u64>,
) -> Option<(SimTime, u64)> {
    let head = stream.front()?;
    let k2 = match head.src {
        Src::Batch => head.n,
        Src::Gen => *emit_vseq
            .get(&head.n)
            .expect("generated head emitted by a consumed parent"),
    };
    Some((head.at, k2))
}

trait FrontKey {
    fn front_key(&self) -> Option<(SimTime, u64)>;
}

impl FrontKey for Vec<OutEntry> {
    /// The first stream entry's merge key: always a batch event (a
    /// worker's first processed event comes from the popped batch), so
    /// the real seq is the key.
    fn front_key(&self) -> Option<(SimTime, u64)> {
        let head = self.first()?;
        match head.src {
            Src::Batch => Some((head.at, head.n)),
            Src::Gen => unreachable!("first processed event must come from the batch"),
        }
    }
}
