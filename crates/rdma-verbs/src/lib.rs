//! # rdma-verbs — a verbs-style RDMA software stack over the simulated
//! RNIC fabric
//!
//! Provides the abstractions of the paper's Fig. 1: protection domains,
//! registered memory regions, connected RC queue pairs, work/completion
//! queues, plus an `mlnx_qos` equivalent for ETS traffic-class
//! configuration — all driving [`rnic_model::Rnic`] instances connected
//! through a switch in a deterministic event loop.
//!
//! Attack code, victims and measurement drivers are [`App`]s: event-driven
//! state machines reacting to completions and timers via [`Ctx`].
//!
//! See [`Simulation`] for a complete two-host example.

#![warn(missing_docs)]

mod host;
mod monitors;
mod world;
mod wr;

pub use host::HostSpec;
pub use world::{
    App, AppId, ConnectOptions, Ctx, MrHandle, QpHandle, QueueBackend, Simulation, SupervisorStats,
    VerbsError,
};
pub use wr::WorkRequest;

// Re-export the identifiers callers need to interact with the NIC layer.
pub use rnic_model::{
    AccessFlags, ArenaStats, Cqe, CqeStatus, DeviceKind, DeviceProfile, FlowId, HostId, MrKey,
    NakReason, Opcode, PdId, PostError, QpNum, QpTransport, RecvWqe, TrafficClass,
};

// Re-export the fault-injection vocabulary so experiment crates can build
// and install plans without depending on the chaos crate directly.
pub use ragnar_chaos::{
    ExecFaultEvent, ExecFaultKind, ExecFaultPlan, ExecPlanParams, ExecWorkerSelector, FabricStats,
    FaultEvent, FaultKind, FaultPlan, InjectorStats, LinkSelector, PlanParams,
};

// Re-export the fabric vocabulary for the same reason: experiments build
// a `Topology` and hand it to `Simulation::with_topology`.
pub use ragnar_topology::{
    FabricRuntime, FlowKey, Link, LinkId, NodeId, PfcPortConfig, PortCounters, Route, SpecError,
    Topology, TopologySpec,
};
