//! Host testbed presets (the paper's Table II).

use rnic_model::DeviceKind;

/// Specification of one test host, mirroring Table II of the paper.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HostSpec {
    /// Host label (H1–H3).
    pub name: &'static str,
    /// Processor model.
    pub processor: &'static str,
    /// RNIC generations installed.
    pub rnics: Vec<DeviceKind>,
    /// Operating system.
    pub os: &'static str,
    /// Installed RAM in GiB.
    pub ram_gib: u32,
}

impl HostSpec {
    /// H1: AMD EPYC 9554, CX-6, Ubuntu 20.04, 755 GB.
    pub fn h1() -> Self {
        HostSpec {
            name: "H1",
            processor: "AMD EPYC 9554",
            rnics: vec![DeviceKind::ConnectX6],
            os: "Ubuntu 20.04",
            ram_gib: 755,
        }
    }

    /// H2: Intel Xeon Silver 4314, CX-4/5, Ubuntu 18.04, 256 GB.
    pub fn h2() -> Self {
        HostSpec {
            name: "H2",
            processor: "Intel Xeon S4314",
            rnics: vec![DeviceKind::ConnectX4, DeviceKind::ConnectX5],
            os: "Ubuntu 18.04",
            ram_gib: 256,
        }
    }

    /// H3: Intel Xeon Platinum 8480+, CX-4 to CX-6, Ubuntu 22.04, 1 TB.
    pub fn h3() -> Self {
        HostSpec {
            name: "H3",
            processor: "Intel Xeon P8480+",
            rnics: vec![
                DeviceKind::ConnectX4,
                DeviceKind::ConnectX5,
                DeviceKind::ConnectX6,
            ],
            os: "Ubuntu 22.04",
            ram_gib: 1024,
        }
    }

    /// The full Table-II testbed.
    pub fn testbed() -> Vec<HostSpec> {
        vec![Self::h1(), Self::h2(), Self::h3()]
    }

    /// True if this host carries the given RNIC generation.
    pub fn supports(&self, kind: DeviceKind) -> bool {
        self.rnics.contains(&kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_matches_table_ii() {
        let hosts = HostSpec::testbed();
        assert_eq!(hosts.len(), 3);
        assert!(hosts[0].supports(DeviceKind::ConnectX6));
        assert!(hosts[1].supports(DeviceKind::ConnectX4));
        assert!(hosts[1].supports(DeviceKind::ConnectX5));
        assert!(!hosts[1].supports(DeviceKind::ConnectX6));
        assert!(hosts[2].supports(DeviceKind::ConnectX6));
        assert_eq!(hosts[2].ram_gib, 1024);
    }

    #[test]
    fn every_generation_is_testable_somewhere() {
        let hosts = HostSpec::testbed();
        for kind in DeviceKind::ALL {
            assert!(
                hosts.iter().any(|h| h.supports(kind)),
                "{kind} missing from testbed"
            );
        }
    }
}
