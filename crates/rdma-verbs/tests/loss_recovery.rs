//! Failure injection: packet loss on the fabric, recovered by the NICs'
//! retransmission machinery.

use rdma_verbs::{AccessFlags, ConnectOptions, CqeStatus, DeviceProfile, Simulation, WorkRequest};
use sim_core::SimTime;

fn lossy_pair(seed: u64, loss: f64) -> (Simulation, rdma_verbs::QpHandle, rdma_verbs::MrHandle) {
    let mut sim = Simulation::new(seed);
    let a = sim.add_host(DeviceProfile::connectx5());
    let b = sim.add_host(DeviceProfile::connectx5());
    let pd_a = sim.alloc_pd(a);
    let pd_b = sim.alloc_pd(b);
    let mr = sim.register_mr(b, pd_b, 1 << 21, AccessFlags::remote_all());
    let (qp, _) = sim.connect(
        a,
        pd_a,
        b,
        pd_b,
        ConnectOptions {
            max_send_queue: 64,
            ..ConnectOptions::default()
        },
    );
    sim.set_loss_rate(loss);
    (sim, qp, mr)
}

#[test]
fn reads_survive_heavy_loss() {
    let (mut sim, qp, mr) = lossy_pair(17, 0.15);
    sim.write_memory(mr.host, mr.addr(0), b"lossy but alive");
    let n = 40u64;
    for i in 0..n {
        sim.post_send(
            qp,
            WorkRequest::read(i, 0x1000 + i * 64, mr.addr(0), mr.key, 15),
        )
        .expect("post");
    }
    sim.run_until(SimTime::from_secs(2));
    let done = sim.take_completions();
    assert_eq!(done.len() as u64, n, "every read eventually completes");
    assert!(done.iter().all(|(_, c)| c.status == CqeStatus::Success));
    // Loss actually happened, and recovery actually ran.
    assert!(sim.dropped_packets() > 0, "fabric dropped packets");
    assert!(
        sim.nic(qp.host).counters().retransmits > 0,
        "requester retransmitted"
    );
    // Data still correct.
    for i in 0..n {
        assert_eq!(
            sim.read_memory(qp.host, 0x1000 + i * 64, 15),
            b"lossy but alive"
        );
    }
}

#[test]
fn writes_survive_loss_and_place_data_once() {
    let (mut sim, qp, mr) = lossy_pair(23, 0.2);
    let payload: Vec<u8> = (0..9000u32).map(|i| (i % 253) as u8).collect();
    sim.write_memory(qp.host, 0x40_0000, &payload);
    sim.post_send(
        qp,
        WorkRequest::write(1, 0x40_0000, mr.addr(0), mr.key, payload.len() as u64),
    )
    .expect("post");
    sim.run_until(SimTime::from_secs(2));
    let done = sim.take_completions();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].1.status, CqeStatus::Success);
    assert_eq!(
        sim.read_memory(mr.host, mr.addr(0), payload.len() as u64),
        payload
    );
}

#[test]
fn atomics_execute_exactly_once_under_loss() {
    // The responder's replay cache must make retransmitted atomics
    // idempotent: N fetch-adds of 1 leave the counter at exactly N.
    let (mut sim, qp, mr) = lossy_pair(31, 0.25);
    sim.memory_mut(mr.host).write_u64(mr.addr(0), 0);
    let n = 30u64;
    for i in 0..n {
        sim.post_send(qp, WorkRequest::fetch_add(i, 0x1000, mr.addr(0), mr.key, 1))
            .expect("post");
    }
    sim.run_until(SimTime::from_secs(3));
    let done = sim.take_completions();
    assert_eq!(done.len() as u64, n);
    assert!(done.iter().all(|(_, c)| c.status == CqeStatus::Success));
    assert!(
        sim.nic(qp.host).counters().retransmits > 0,
        "loss exercised"
    );
    assert_eq!(
        sim.nic(mr.host).memory().read_u64(mr.addr(0)),
        n,
        "exactly-once atomic execution"
    );
    // Old values form a permutation of 0..n (each increment observed a
    // distinct predecessor state).
    let mut olds: Vec<u64> = done.iter().map(|(_, c)| c.atomic_old_value).collect();
    olds.sort_unstable();
    assert_eq!(olds, (0..n).collect::<Vec<_>>());
}

#[test]
fn total_loss_exhausts_retries() {
    let (mut sim, qp, mr) = lossy_pair(5, 0.999_999);
    sim.post_send(qp, WorkRequest::read(1, 0x1000, mr.addr(0), mr.key, 64))
        .expect("post");
    sim.run_until(SimTime::from_secs(5));
    let done = sim.take_completions();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].1.status, CqeStatus::RetryExceeded);
    // The send queue slot was released.
    sim.set_loss_rate(0.0);
    sim.post_send(qp, WorkRequest::read(2, 0x1000, mr.addr(0), mr.key, 64))
        .expect("slot released after retry exhaustion");
    sim.run_until(SimTime::from_secs(6));
    assert_eq!(sim.take_completions().len(), 1);
}

#[test]
fn lossless_fabric_never_retransmits() {
    let (mut sim, qp, mr) = lossy_pair(7, 0.0);
    for i in 0..50 {
        sim.post_send(qp, WorkRequest::read(i, 0x1000, mr.addr(0), mr.key, 256))
            .expect("post");
    }
    sim.run_until(SimTime::from_secs(1));
    assert_eq!(sim.take_completions().len(), 50);
    assert_eq!(sim.dropped_packets(), 0);
    assert_eq!(sim.nic(qp.host).counters().retransmits, 0);
}
