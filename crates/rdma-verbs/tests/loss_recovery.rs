//! Failure injection: packet loss on the fabric, recovered by the NICs'
//! retransmission machinery.

use rdma_verbs::{
    AccessFlags, ConnectOptions, CqeStatus, DeviceProfile, NakReason, RecvWqe, Simulation,
    VerbsError, WorkRequest,
};
use sim_core::SimTime;

fn lossy_pair(seed: u64, loss: f64) -> (Simulation, rdma_verbs::QpHandle, rdma_verbs::MrHandle) {
    let mut sim = Simulation::new(seed);
    let a = sim.add_host(DeviceProfile::connectx5());
    let b = sim.add_host(DeviceProfile::connectx5());
    let pd_a = sim.alloc_pd(a);
    let pd_b = sim.alloc_pd(b);
    let mr = sim.register_mr(b, pd_b, 1 << 21, AccessFlags::remote_all());
    let (qp, _) = sim.connect(
        a,
        pd_a,
        b,
        pd_b,
        ConnectOptions {
            max_send_queue: 64,
            ..ConnectOptions::default()
        },
    );
    sim.set_loss_rate(loss);
    (sim, qp, mr)
}

#[test]
fn reads_survive_heavy_loss() {
    let (mut sim, qp, mr) = lossy_pair(17, 0.15);
    sim.write_memory(mr.host, mr.addr(0), b"lossy but alive");
    let n = 40u64;
    for i in 0..n {
        sim.post_send(
            qp,
            WorkRequest::read(i, 0x1000 + i * 64, mr.addr(0), mr.key, 15),
        )
        .expect("post");
    }
    sim.run_until(SimTime::from_secs(2));
    let done = sim.take_completions();
    assert_eq!(done.len() as u64, n, "every read eventually completes");
    assert!(done.iter().all(|(_, c)| c.status == CqeStatus::Success));
    // Loss actually happened, and recovery actually ran.
    assert!(sim.dropped_packets() > 0, "fabric dropped packets");
    assert!(
        sim.nic(qp.host).counters().retransmits > 0,
        "requester retransmitted"
    );
    // Data still correct.
    for i in 0..n {
        assert_eq!(
            sim.read_memory(qp.host, 0x1000 + i * 64, 15),
            b"lossy but alive"
        );
    }
}

#[test]
fn writes_survive_loss_and_place_data_once() {
    let (mut sim, qp, mr) = lossy_pair(23, 0.2);
    let payload: Vec<u8> = (0..9000u32).map(|i| (i % 253) as u8).collect();
    sim.write_memory(qp.host, 0x40_0000, &payload);
    sim.post_send(
        qp,
        WorkRequest::write(1, 0x40_0000, mr.addr(0), mr.key, payload.len() as u64),
    )
    .expect("post");
    sim.run_until(SimTime::from_secs(2));
    let done = sim.take_completions();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].1.status, CqeStatus::Success);
    assert_eq!(
        sim.read_memory(mr.host, mr.addr(0), payload.len() as u64),
        payload
    );
}

#[test]
fn atomics_execute_exactly_once_under_loss() {
    // The responder's replay cache must make retransmitted atomics
    // idempotent: N fetch-adds of 1 leave the counter at exactly N.
    let (mut sim, qp, mr) = lossy_pair(31, 0.25);
    sim.memory_mut(mr.host).write_u64(mr.addr(0), 0);
    let n = 30u64;
    for i in 0..n {
        sim.post_send(qp, WorkRequest::fetch_add(i, 0x1000, mr.addr(0), mr.key, 1))
            .expect("post");
    }
    sim.run_until(SimTime::from_secs(3));
    let done = sim.take_completions();
    assert_eq!(done.len() as u64, n);
    assert!(done.iter().all(|(_, c)| c.status == CqeStatus::Success));
    assert!(
        sim.nic(qp.host).counters().retransmits > 0,
        "loss exercised"
    );
    assert_eq!(
        sim.nic(mr.host).memory().read_u64(mr.addr(0)),
        n,
        "exactly-once atomic execution"
    );
    // Old values form a permutation of 0..n (each increment observed a
    // distinct predecessor state).
    let mut olds: Vec<u64> = done.iter().map(|(_, c)| c.atomic_old_value).collect();
    olds.sort_unstable();
    assert_eq!(olds, (0..n).collect::<Vec<_>>());
}

#[test]
fn total_loss_exhausts_retries() {
    // A fully dead fabric (loss 1.0 is legal now) exhausts the retry
    // budget with exponential backoff, errors the QP, and the verbs
    // recovery ladder brings it back.
    let (mut sim, qp, mr) = lossy_pair(5, 1.0);
    sim.post_send(qp, WorkRequest::read(1, 0x1000, mr.addr(0), mr.key, 64))
        .expect("post");
    sim.run_until(SimTime::from_secs(5));
    let done = sim.take_completions();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].1.status, CqeStatus::RetryExceeded);
    // The fatal error put the QP into the Error state: posts bounce.
    assert!(sim.qp_in_error(qp));
    let err = sim
        .post_send(qp, WorkRequest::read(2, 0x1000, mr.addr(0), mr.key, 64))
        .expect_err("error-state QP rejects posts");
    assert_eq!(err, VerbsError::QpInError);
    // Recover and verify the QP works again on a healthy fabric.
    sim.set_loss_rate(0.0);
    sim.recover_qp(qp).expect("recover after drain");
    assert!(!sim.qp_in_error(qp));
    sim.post_send(qp, WorkRequest::read(2, 0x1000, mr.addr(0), mr.key, 64))
        .expect("slot released after retry exhaustion");
    sim.run_until(SimTime::from_secs(6));
    let redone = sim.take_completions();
    assert_eq!(redone.len(), 1);
    assert_eq!(redone[0].1.status, CqeStatus::Success);
}

#[test]
fn out_of_bounds_nak_under_loss_keeps_qp_usable() {
    // Protection NAKs (the paper's snooping probe mechanism) must keep
    // flowing — and must not error the QP — even while the fabric drops
    // packets and the NAKs themselves need retransmitted requests.
    let (mut sim, qp, mr) = lossy_pair(41, 0.2);
    sim.write_memory(mr.host, mr.addr(0), b"good");
    let n = 12u64;
    for i in 0..n {
        // Even wr_ids probe past the MR's end; odd ones are valid.
        let remote = if i % 2 == 0 {
            mr.addr(mr.len - 8)
        } else {
            mr.addr(0)
        };
        sim.post_send(
            qp,
            WorkRequest::read(i, 0x1000 + i * 64, remote, mr.key, 64),
        )
        .expect("post");
    }
    sim.run_until(SimTime::from_secs(2));
    let done = sim.take_completions();
    assert_eq!(done.len() as u64, n, "every probe completes, NAK or not");
    for (_, cqe) in &done {
        let want = if cqe.wr_id % 2 == 0 {
            CqeStatus::RemoteError(NakReason::OutOfBounds)
        } else {
            CqeStatus::Success
        };
        assert_eq!(cqe.status, want, "wr {}", cqe.wr_id);
    }
    // Access violations are not transport failures: the QP stays Ready.
    assert!(!sim.qp_in_error(qp));
    assert!(sim.dropped_packets() > 0, "loss ran concurrently");
}

#[test]
fn send_without_recv_exhausts_rnr_budget_then_recovers() {
    // A Send into an empty receive queue draws RNR NAKs; once the
    // rnr_retry budget is spent the QP takes a fatal ReceiveNotPosted
    // and lands in Error — recoverable through the same verbs ladder as
    // retry exhaustion. Concurrent loss must not double-count budget.
    let mut sim = Simulation::new(47);
    let a = sim.add_host(DeviceProfile::connectx5());
    let b = sim.add_host(DeviceProfile::connectx5());
    let pd_a = sim.alloc_pd(a);
    let pd_b = sim.alloc_pd(b);
    let _mr = sim.register_mr(b, pd_b, 1 << 21, AccessFlags::remote_all());
    let (qp, peer) = sim.connect(a, pd_a, b, pd_b, ConnectOptions::default());
    sim.set_loss_rate(0.1);
    sim.write_memory(a, 0x1000, b"nobody listening");
    sim.post_send(qp, WorkRequest::send(1, 0x1000, 16))
        .expect("post");
    sim.run_until(SimTime::from_secs(5));
    let done = sim.take_completions();
    assert_eq!(done.len(), 1);
    assert_eq!(
        done[0].1.status,
        CqeStatus::RemoteError(NakReason::ReceiveNotPosted)
    );
    assert!(sim.qp_in_error(qp), "RNR exhaustion is fatal");
    assert!(
        sim.nic(qp.host).counters().rnr_naks > 0,
        "budget was consumed"
    );

    // Recover, post the missing receive, and the same Send goes through.
    sim.set_loss_rate(0.0);
    sim.recover_qp(qp).expect("recover after drain");
    sim.post_recv(
        peer,
        RecvWqe {
            wr_id: 50,
            local_addr: 0x9000,
            len: 64,
        },
    )
    .expect("post recv");
    sim.post_send(qp, WorkRequest::send(2, 0x1000, 16))
        .expect("post");
    sim.run_until(SimTime::from_secs(6));
    let redone = sim.take_completions();
    let send_cqe = redone.iter().find(|(_, c)| !c.is_recv).expect("send CQE");
    assert_eq!(send_cqe.1.status, CqeStatus::Success);
    let recv_cqe = redone.iter().find(|(_, c)| c.is_recv).expect("recv CQE");
    assert_eq!(recv_cqe.1.wr_id, 50);
    assert_eq!(sim.read_memory(b, 0x9000, 16), b"nobody listening");
}

#[test]
fn late_receive_rescues_send_within_rnr_budget() {
    // The RNR budget exists to buy the peer time: a receive posted after
    // the first NAK but before the budget runs out lets the redriven
    // Send complete with no application-visible error.
    let mut sim = Simulation::new(53);
    let a = sim.add_host(DeviceProfile::connectx5());
    let b = sim.add_host(DeviceProfile::connectx5());
    let pd_a = sim.alloc_pd(a);
    let pd_b = sim.alloc_pd(b);
    let _mr = sim.register_mr(b, pd_b, 1 << 21, AccessFlags::remote_all());
    let (qp, peer) = sim.connect(a, pd_a, b, pd_b, ConnectOptions::default());
    sim.write_memory(a, 0x1000, b"patience");
    sim.post_send(qp, WorkRequest::send(1, 0x1000, 8))
        .expect("post");
    // One RNR NAK lands well inside 100 µs (the retransmit timeout);
    // the receive shows up before the first redrive.
    sim.run_until(SimTime::from_micros(50));
    assert!(sim.take_completions().is_empty(), "send still pending");
    sim.post_recv(
        peer,
        RecvWqe {
            wr_id: 60,
            local_addr: 0xA000,
            len: 64,
        },
    )
    .expect("post recv");
    sim.run_until(SimTime::from_secs(1));
    let done = sim.take_completions();
    let send_cqe = done.iter().find(|(_, c)| !c.is_recv).expect("send CQE");
    assert_eq!(send_cqe.1.status, CqeStatus::Success);
    assert!(!sim.qp_in_error(qp));
    assert!(
        sim.nic(qp.host).counters().rnr_naks >= 1,
        "the rescue really went through the RNR path"
    );
    assert_eq!(sim.read_memory(b, 0xA000, 8), b"patience");
}

#[test]
fn lossless_fabric_never_retransmits() {
    let (mut sim, qp, mr) = lossy_pair(7, 0.0);
    for i in 0..50 {
        sim.post_send(qp, WorkRequest::read(i, 0x1000, mr.addr(0), mr.key, 256))
            .expect("post");
    }
    sim.run_until(SimTime::from_secs(1));
    assert_eq!(sim.take_completions().len(), 50);
    assert_eq!(sim.dropped_packets(), 0);
    assert_eq!(sim.nic(qp.host).counters().retransmits, 0);
}
