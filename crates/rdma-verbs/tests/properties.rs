//! Property-based tests of the verbs stack over the simulated fabric:
//! arbitrary operation sequences preserve data integrity, completion
//! accounting and per-QP ordering.

use proptest::prelude::*;
use rdma_verbs::{
    AccessFlags, ConnectOptions, CqeStatus, DeviceProfile, Opcode, Simulation, WorkRequest,
};
use sim_core::SimTime;

#[derive(Debug, Clone)]
enum Op {
    Write { off: u64, len: u64, fill: u8 },
    Read { off: u64, len: u64 },
    FetchAdd { off: u64, delta: u64 },
    CmpSwapHit { off: u64, new: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..30_000, 1u64..2048, any::<u8>()).prop_map(|(off, len, fill)| Op::Write {
            off,
            len,
            fill
        }),
        (0u64..30_000, 1u64..2048).prop_map(|(off, len)| Op::Read { off, len }),
        (0u64..3_000, 1u64..100).prop_map(|(off, delta)| Op::FetchAdd {
            off: off * 8,
            delta
        }),
        (0u64..3_000, 1u64..u64::MAX).prop_map(|(off, new)| Op::CmpSwapHit { off: off * 8, new }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A random single-QP op sequence: every op completes successfully,
    /// in post order, and the final remote memory matches a reference
    /// byte-array model.
    #[test]
    fn random_op_sequence_matches_reference(
        ops in prop::collection::vec(op_strategy(), 1..40),
        seed in 0u64..1_000
    ) {
        let mut sim = Simulation::new(seed);
        let a = sim.add_host(DeviceProfile::connectx5());
        let b = sim.add_host(DeviceProfile::connectx5());
        let pd_a = sim.alloc_pd(a);
        let pd_b = sim.alloc_pd(b);
        let la = sim.register_mr(a, pd_a, 1 << 21, AccessFlags::remote_all());
        let rb = sim.register_mr(b, pd_b, 1 << 21, AccessFlags::remote_all());
        let (qp, _) = sim.connect(a, pd_a, b, pd_b, ConnectOptions {
            max_send_queue: 64,
            ..ConnectOptions::default()
        });

        // Reference model of the remote MR.
        let mut model = vec![0u8; 40_000];
        let mut expected_reads: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut expected_atomics: Vec<(u64, u64)> = Vec::new(); // wr_id -> old value

        let mut wr_id = 0u64;
        let mut read_slot = 0u64;
        for op in &ops {
            wr_id += 1;
            match *op {
                Op::Write { off, len, fill } => {
                    let data = vec![fill; len as usize];
                    sim.write_memory(a, la.addr(0) + wr_id * 4096 % (1 << 20), &data);
                    let local = la.addr(0) + wr_id * 4096 % (1 << 20);
                    sim.write_memory(a, local, &data);
                    sim.post_send(qp, WorkRequest::write(wr_id, local, rb.addr(off), rb.key, len))
                        .expect("post write");
                    model[off as usize..(off + len) as usize].fill(fill);
                }
                Op::Read { off, len } => {
                    read_slot += 1;
                    let local = la.addr(1 << 20) + (read_slot * 2048) % ((1 << 20) - 2048);
                    sim.post_send(qp, WorkRequest::read(wr_id, local, rb.addr(off), rb.key, len))
                        .expect("post read");
                    expected_reads.push((local, model[off as usize..(off + len) as usize].to_vec()));
                }
                Op::FetchAdd { off, delta } => {
                    let old = u64::from_le_bytes(
                        model[off as usize..off as usize + 8].try_into().expect("8"),
                    );
                    model[off as usize..off as usize + 8]
                        .copy_from_slice(&old.wrapping_add(delta).to_le_bytes());
                    sim.post_send(qp, WorkRequest::fetch_add(wr_id, la.addr(0), rb.addr(off), rb.key, delta))
                        .expect("post fa");
                    expected_atomics.push((wr_id, old));
                }
                Op::CmpSwapHit { off, new } => {
                    let old = u64::from_le_bytes(
                        model[off as usize..off as usize + 8].try_into().expect("8"),
                    );
                    // Always-matching compare: swap succeeds.
                    model[off as usize..off as usize + 8].copy_from_slice(&new.to_le_bytes());
                    sim.post_send(qp, WorkRequest::cmp_swap(wr_id, la.addr(0), rb.addr(off), rb.key, old, new))
                        .expect("post cas");
                    expected_atomics.push((wr_id, old));
                }
            }
            // Keep the queue shallow enough to never hit SendQueueFull.
            if wr_id.is_multiple_of(32) {
                sim.run_until(SimTime::from_millis(wr_id));
            }
        }
        sim.run_until(SimTime::from_secs(1));
        let done = sim.take_completions();
        prop_assert_eq!(done.len(), ops.len(), "every op completes");
        // In post order, all successful.
        let mut last = 0;
        for (_, cqe) in &done {
            prop_assert_eq!(cqe.status, CqeStatus::Success);
            prop_assert!(cqe.wr_id > last, "completions in post order");
            last = cqe.wr_id;
        }
        // Remote memory equals the model.
        let remote = sim.read_memory(b, rb.addr(0), 40_000);
        prop_assert_eq!(&remote, &model);
        // Reads observed the model at their post time (RC ordering).
        for (local, expect) in expected_reads {
            let got = sim.read_memory(a, local, expect.len() as u64);
            prop_assert_eq!(got, expect);
        }
        // Atomics returned the model's old values.
        for (id, old) in expected_atomics {
            let cqe = done
                .iter()
                .map(|(_, c)| c)
                .find(|c| c.wr_id == id)
                .expect("atomic completion");
            prop_assert_eq!(cqe.atomic_old_value, old);
        }
    }

    /// Out-of-bounds and wrong-PD requests always fail with a remote
    /// error and never corrupt memory.
    #[test]
    fn invalid_requests_always_nak(
        kind_pick in 0usize..3,
        off in 0u64..4096,
        len in 1u64..4096,
        seed in 0u64..100
    ) {
        let mut sim = Simulation::new(seed);
        let a = sim.add_host(DeviceProfile::connectx4());
        let b = sim.add_host(DeviceProfile::connectx4());
        let pd_a = sim.alloc_pd(a);
        let pd_b = sim.alloc_pd(b);
        let other_pd = sim.alloc_pd(b);
        let rb = sim.register_mr(b, pd_b, 1 << 16, AccessFlags::remote_read_only());
        let foreign = sim.register_mr(b, other_pd, 1 << 16, AccessFlags::remote_all());
        let (qp, _) = sim.connect(a, pd_a, b, pd_b, ConnectOptions::default());
        sim.write_memory(b, rb.addr(0), b"canary");

        let wr = match kind_pick {
            // Past the end of the MR.
            0 => WorkRequest::read(1, 0x1000, rb.addr(0) + (1 << 16) - (len / 2).min(1), rb.key, len + (1 << 16)),
            // Write to a read-only MR.
            1 => WorkRequest::write(1, 0x1000, rb.addr(off % 4096), rb.key, len),
            // Access an MR in a different PD.
            _ => WorkRequest::read(1, 0x1000, foreign.addr(off % 4096), foreign.key, len.min(1024)),
        };
        sim.post_send(qp, wr).expect("post");
        sim.run_until(SimTime::from_millis(5));
        let done = sim.take_completions();
        prop_assert_eq!(done.len(), 1);
        prop_assert!(matches!(done[0].1.status, CqeStatus::RemoteError(_)),
            "kind {} must NAK", kind_pick);
        prop_assert_eq!(sim.read_memory(b, rb.addr(0), 6), b"canary".to_vec());
    }

    /// Whatever the traffic, NIC counters balance: requester request
    /// count equals responder served count plus NAKs.
    #[test]
    fn counter_conservation(n_reads in 1usize..40, msg in 1u64..4096, seed in 0u64..50) {
        let mut sim = Simulation::new(seed);
        let a = sim.add_host(DeviceProfile::connectx6());
        let b = sim.add_host(DeviceProfile::connectx6());
        let pd_a = sim.alloc_pd(a);
        let pd_b = sim.alloc_pd(b);
        let rb = sim.register_mr(b, pd_b, 1 << 21, AccessFlags::remote_all());
        let (qp, _) = sim.connect(a, pd_a, b, pd_b, ConnectOptions {
            max_send_queue: 64,
            ..ConnectOptions::default()
        });
        for i in 0..n_reads {
            sim.post_send(
                qp,
                WorkRequest::read(i as u64, 0x1000, rb.addr((i as u64 * 4096) % (1 << 20)), rb.key, msg),
            )
            .expect("post");
        }
        sim.run_until(SimTime::from_secs(1));
        prop_assert_eq!(sim.take_completions().len(), n_reads);
        let ca = sim.counters(a);
        let cb = sim.counters(b);
        prop_assert_eq!(ca.requests_per_opcode[Opcode::Read.index()] as usize, n_reads);
        prop_assert_eq!(cb.responder_ops_per_opcode[Opcode::Read.index()] as usize, n_reads);
        prop_assert_eq!(cb.tpu_lookups as usize, n_reads);
        prop_assert_eq!(cb.naks_sent, 0);
        // Byte conservation on the wire: b transmitted at least the
        // payload bytes back.
        prop_assert!(cb.tx_bytes >= n_reads as u64 * msg);
        prop_assert_eq!(ca.cqes_delivered as usize, n_reads);
    }
}
