//! Online invariant monitors: a clean run under monitors is
//! bit-identical to an unmonitored run (and never raises), while a
//! planted ledger/state bug is caught and handled per the configured
//! violation policy.

use rdma_verbs::{
    AccessFlags, App, ConnectOptions, Ctx, DeviceProfile, HostId, MrHandle, QpHandle, QpNum,
    Simulation, WorkRequest,
};
use sim_core::{MonitorConfig, SimDuration, SimTime, ViolationPolicy};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Ambient monitor config is process-global and read at `Simulation`
/// construction; tests serialize on this lock and restore `None` on
/// drop.
static AMBIENT: Mutex<()> = Mutex::new(());

struct AmbientGuard<'a>(#[allow(dead_code)] MutexGuard<'a, ()>);

impl<'a> AmbientGuard<'a> {
    fn install(cfg: Option<MonitorConfig>) -> AmbientGuard<'a> {
        let g = AMBIENT.lock().unwrap_or_else(PoisonError::into_inner);
        sim_core::set_ambient_monitors(cfg);
        AmbientGuard(g)
    }
}

impl Drop for AmbientGuard<'_> {
    fn drop(&mut self) {
        sim_core::set_ambient_monitors(None);
    }
}

fn cfg(policy: ViolationPolicy, every_events: u64) -> MonitorConfig {
    MonitorConfig {
        policy,
        every_events,
    }
}

/// Small two-host writer: a handful of timed write bursts.
struct Writer {
    qp: QpHandle,
    mr: MrHandle,
    rounds: u32,
}

impl App for Writer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_nanos(100), 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let wr_id = u64::from(self.rounds);
        let _ = ctx.post_send(
            self.qp,
            WorkRequest::write(wr_id, 0x10_0000, self.mr.addr(0), self.mr.key, 256),
        );
        if self.rounds > 0 {
            self.rounds -= 1;
            ctx.set_timer(SimDuration::from_nanos(800), 0);
        }
    }
}

fn build(seed: u64) -> (Simulation, HostId, QpNum) {
    let mut sim = Simulation::new(seed);
    let a = sim.add_host(DeviceProfile::connectx5());
    let b = sim.add_host(DeviceProfile::connectx5());
    let pd_a = sim.alloc_pd(a);
    let pd_b = sim.alloc_pd(b);
    let mr_b = sim.register_mr(b, pd_b, 1024 * 1024, AccessFlags::remote_all());
    let (qa, _qb) = sim.connect(a, pd_a, b, pd_b, ConnectOptions::default());
    let app = sim.add_app(Box::new(Writer {
        qp: qa,
        mr: mr_b,
        rounds: 12,
    }));
    sim.set_app_scope(app, &[a, b]);
    sim.own_qp(app, qa);
    (sim, a, qa.qp)
}

/// A clean workload under the strictest policy: no violation fires at
/// any cadence, and the monitored digests match the unmonitored run
/// exactly (monitors observe, never perturb).
#[test]
fn clean_run_under_monitors_is_silent_and_bit_identical() {
    let horizon = SimTime::from_micros(200);
    let baseline = {
        let _guard = AmbientGuard::install(None);
        let (mut sim, _, _) = build(5);
        sim.run_until(horizon);
        (sim.events_processed(), sim.order_digest())
    };
    for every in [1u64, 7, 1024] {
        let _guard = AmbientGuard::install(Some(cfg(ViolationPolicy::AbortRun, every)));
        let (mut sim, _, _) = build(5);
        sim.run_until(horizon);
        assert_eq!(
            (sim.events_processed(), sim.order_digest()),
            baseline,
            "monitors perturbed the run at cadence {every}"
        );
        assert_eq!(sim.monitor_violations(), Some(0));
    }
}

/// Monitors force the sequential engine: a parallel request under
/// monitors still lands on the oracle's bits.
#[test]
fn monitored_parallel_request_falls_back_to_oracle() {
    let horizon = SimTime::from_micros(200);
    let _guard = AmbientGuard::install(Some(cfg(ViolationPolicy::FailCell, 64)));
    let (mut seq, _, _) = build(9);
    seq.run_until(horizon);
    let (mut par, _, _) = build(9);
    par.run_until_workers(horizon, 8);
    assert_eq!(seq.order_digest(), par.order_digest());
    assert_eq!(seq.events_processed(), par.events_processed());
}

/// Under the `Log` policy a planted arena-ledger skew is counted (once
/// per cadence check) and the run completes.
#[test]
fn planted_arena_skew_is_logged() {
    let _guard = AmbientGuard::install(Some(cfg(ViolationPolicy::Log, 8)));
    let (mut sim, _, _) = build(11);
    sim.debug_skew_arena_ledger();
    sim.run_until(SimTime::from_micros(200));
    assert!(
        sim.monitor_violations().unwrap() > 0,
        "ledger skew went unnoticed"
    );
}

/// Under `FailCell` the same skew panics with the `[monitor]` prefix
/// the harness maps to a per-cell failure.
#[test]
fn planted_arena_skew_fails_the_cell() {
    let _guard = AmbientGuard::install(Some(cfg(ViolationPolicy::FailCell, 8)));
    let (mut sim, _, _) = build(13);
    sim.debug_skew_arena_ledger();
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sim.run_until(SimTime::from_micros(200));
    }))
    .expect_err("monitor should have tripped");
    let msg = sim_core::panic_payload_message(err.as_ref());
    assert!(msg.starts_with("[monitor] "), "got: {msg}");
    assert!(msg.contains("arena ledger skew"), "got: {msg}");
}

/// Under `AbortRun` a phantom fabric delivery panics with the
/// `[monitor-abort]` prefix the harness maps to a whole-sweep abort.
#[test]
fn planted_fabric_skew_aborts_the_run() {
    let _guard = AmbientGuard::install(Some(cfg(ViolationPolicy::AbortRun, 4)));
    let (mut sim, _, _) = build(17);
    sim.debug_skew_fabric_ledger();
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sim.run_until(SimTime::from_micros(200));
    }))
    .expect_err("monitor should have tripped");
    let msg = sim_core::panic_payload_message(err.as_ref());
    assert!(msg.starts_with("[monitor-abort] "), "got: {msg}");
    assert!(msg.contains("packet conservation"), "got: {msg}");
}

/// An illegal QP state (outstanding past its bound) is caught by the
/// QP-legality monitor.
#[test]
fn planted_illegal_qp_state_is_caught() {
    let _guard = AmbientGuard::install(Some(cfg(ViolationPolicy::Log, 4)));
    let (mut sim, host, qp) = build(19);
    sim.run_until(SimTime::from_micros(5));
    sim.debug_skew_qp(host, qp);
    sim.run_until(SimTime::from_micros(200));
    assert!(
        sim.monitor_violations().unwrap() > 0,
        "illegal QP state went unnoticed"
    );
}

/// Without ambient monitors there is no monitor state at all.
#[test]
fn no_monitors_without_ambient_config() {
    let _guard = AmbientGuard::install(None);
    let (mut sim, _, _) = build(23);
    sim.run_until(SimTime::from_micros(50));
    assert_eq!(sim.monitor_violations(), None);
}
