//! PDES differential suite: `run_until_workers` must reproduce the
//! sequential engine bit-for-bit — event-order digest, event count,
//! fabric ledger, fault trace, NIC counters and app-visible completion
//! logs — for randomized topologies, chaos plans and QP workloads at
//! every worker count.

use proptest::prelude::*;
use rdma_verbs::{
    AccessFlags, App, ConnectOptions, Ctx, DeviceProfile, FabricStats, FaultEvent, FaultKind,
    FaultPlan, HostId, LinkSelector, MrHandle, QpHandle, QueueBackend, Simulation, Topology,
    WorkRequest,
};
use sim_core::{SimDuration, SimRng, SimTime};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

type Log = Rc<RefCell<Vec<(u64, u64)>>>;
type SendLog = Arc<Mutex<Vec<(u64, u64)>>>;

/// A two-host traffic generator: posts batches of reads/writes from a
/// timer, re-arms a pseudo-random interval, and logs every completion.
/// Exercises timers, CQE barriers, RNG draws and cross-round traffic.
struct Pinger {
    qp: QpHandle,
    mr: MrHandle,
    rounds: u32,
    log: Log,
}

impl App for Pinger {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let jitter = ctx.rng().next_u64() % 2_000;
        ctx.set_timer(SimDuration::from_nanos(50 + jitter), 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let burst = 1 + ctx.rng().next_u64() % 3;
        for i in 0..burst {
            let wr_id = u64::from(self.rounds) << 8 | i;
            let off = (ctx.rng().next_u64() % 64) * 64;
            let wr = if ctx.rng().chance(0.5) {
                WorkRequest::read(wr_id, 0x10_0000 + off, self.mr.addr(off), self.mr.key, 64)
            } else {
                WorkRequest::write(wr_id, 0x10_0000 + off, self.mr.addr(off), self.mr.key, 64)
            };
            // SendQueueFull is fine under heavy bursts; the workload
            // just paces itself like real attack loops do.
            let _ = ctx.post_send(self.qp, wr);
        }
        if self.rounds > 0 {
            self.rounds -= 1;
            let gap = 200 + ctx.rng().next_u64() % 3_000;
            ctx.set_timer(SimDuration::from_nanos(gap), 0);
        }
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_>, _host: HostId, cqe: rdma_verbs::Cqe) {
        self.log
            .borrow_mut()
            .push((cqe.wr_id, cqe.completed_at.as_picos()));
        let _ = ctx;
    }
}

/// The send-app counterpart of [`Pinger`]: same traffic shape, but
/// registered via `add_send_app` so the parallel engine runs its
/// callbacks worker-side. Draws from a private RNG (send apps must not
/// touch the world stream) and logs through an `Arc<Mutex<…>>`.
struct Pump {
    qp: QpHandle,
    mr: MrHandle,
    rounds: u32,
    rng: SimRng,
    log: SendLog,
}

impl App for Pump {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let jitter = self.rng.next_u64() % 2_000;
        ctx.set_timer(SimDuration::from_nanos(40 + jitter), 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let burst = 1 + self.rng.next_u64() % 3;
        for i in 0..burst {
            let wr_id = u64::from(self.rounds) << 8 | i;
            let off = (self.rng.next_u64() % 64) * 64;
            let wr = if self.rng.chance(0.5) {
                WorkRequest::read(wr_id, 0x10_0000 + off, self.mr.addr(off), self.mr.key, 64)
            } else {
                WorkRequest::write(wr_id, 0x10_0000 + off, self.mr.addr(off), self.mr.key, 64)
            };
            let _ = ctx.post_send(self.qp, wr);
        }
        if self.rounds > 0 {
            self.rounds -= 1;
            let gap = 150 + self.rng.next_u64() % 2_500;
            ctx.set_timer(SimDuration::from_nanos(gap), 0);
        }
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_>, _host: HostId, cqe: rdma_verbs::Cqe) {
        self.log
            .lock()
            .unwrap()
            .push((cqe.wr_id, cqe.completed_at.as_picos()));
        let _ = ctx;
    }
}

/// Which kind of apps the differential workload registers.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Apps {
    /// Coordinator apps only (`add_app`, barrier path).
    Local,
    /// Send apps only (`add_send_app`, worker path); when `home_scope`
    /// is set their scope is the requester host alone, so every pair
    /// splits into two single-host partition groups.
    Send { home_scope: bool },
    /// Alternating coordinator and send apps — barriers and worker-side
    /// callbacks interleave inside the same simulation.
    Mixed,
}

struct Config {
    seed: u64,
    /// Number of independent host pairs (2 hosts, 1 app each).
    pairs: u32,
    rounds: u32,
    fabric: bool,
    chaos: bool,
    backend: QueueBackend,
    apps: Apps,
}

/// A per-app completion log, behind whichever sharing type the app
/// kind requires.
enum LogHandle {
    Local(Log),
    Send(SendLog),
}

impl LogHandle {
    fn snapshot(&self) -> Vec<(u64, u64)> {
        match self {
            LogHandle::Local(l) => l.borrow().clone(),
            LogHandle::Send(l) => l.lock().unwrap().clone(),
        }
    }
}

fn build(cfg: &Config) -> (Simulation, Vec<LogHandle>) {
    let mut sim = if cfg.fabric {
        // `with_topology` always uses the default (calendar) backend.
        let hosts = (cfg.pairs * 2).max(4).next_power_of_two();
        let spec = format!("leaf-spine:hosts={hosts},leaves=2,spines=2");
        Simulation::with_topology(cfg.seed, Topology::from_spec(&spec).expect("spec"), None)
    } else {
        Simulation::with_backend(cfg.seed, cfg.backend)
    };
    if cfg.chaos {
        let mut plan = FaultPlan::empty(cfg.seed ^ 0xc4a0);
        plan.events.push(FaultEvent {
            link: LinkSelector::Any,
            from: SimTime::ZERO,
            until: SimTime::from_millis(1),
            kind: FaultKind::LossBurst { rate: 0.05 },
        });
        plan.events.push(FaultEvent {
            link: LinkSelector::Any,
            from: SimTime::from_micros(5),
            until: SimTime::from_micros(60),
            kind: FaultKind::Duplicate { prob: 0.1 },
        });
        plan.events.push(FaultEvent {
            link: LinkSelector::Any,
            from: SimTime::from_micros(10),
            until: SimTime::from_micros(80),
            kind: FaultKind::Reorder {
                window: SimDuration::from_micros(1),
            },
        });
        sim.install_fault_plan(&plan);
    }
    let mut logs = Vec::new();
    for p in 0..cfg.pairs {
        let a = sim.add_host(DeviceProfile::connectx5());
        let b = sim.add_host(DeviceProfile::connectx5());
        let pd_a = sim.alloc_pd(a);
        let pd_b = sim.alloc_pd(b);
        let mr_b = sim.register_mr(b, pd_b, 2 * 1024 * 1024, AccessFlags::remote_all());
        let (qa, _qb) = sim.connect(a, pd_a, b, pd_b, ConnectOptions::default());
        let local = match cfg.apps {
            Apps::Local => true,
            Apps::Send { .. } => false,
            Apps::Mixed => p % 2 == 0,
        };
        let (app, handle) = if local {
            let log: Log = Rc::new(RefCell::new(Vec::new()));
            let app = sim.add_app(Box::new(Pinger {
                qp: qa,
                mr: mr_b,
                rounds: cfg.rounds + p % 3,
                log: Rc::clone(&log),
            }));
            sim.set_app_scope(app, &[a, b]);
            (app, LogHandle::Local(log))
        } else {
            let log: SendLog = Arc::new(Mutex::new(Vec::new()));
            let app = sim.add_send_app(Box::new(Pump {
                qp: qa,
                mr: mr_b,
                rounds: cfg.rounds + p % 3,
                rng: SimRng::derive(cfg.seed ^ u64::from(p), "pump"),
                log: Arc::clone(&log),
            }));
            let home_only = matches!(cfg.apps, Apps::Send { home_scope: true });
            if home_only {
                sim.set_app_scope(app, &[a]);
            } else {
                sim.set_app_scope(app, &[a, b]);
            }
            (app, LogHandle::Send(log))
        };
        sim.own_qp(app, qa);
        logs.push(handle);
    }
    (sim, logs)
}

#[derive(Debug, PartialEq)]
struct Obs {
    events: u64,
    order: u64,
    fabric: FabricStats,
    fault: Option<u64>,
    counters: Vec<String>,
    logs: Vec<Vec<(u64, u64)>>,
}

fn observe(cfg: &Config, workers: usize) -> Obs {
    observe_at_threshold(cfg, workers, Some(0))
}

/// Like [`observe`], but with the engine's ship threshold left at (or
/// pinned to) the given value. `Some(0)` forces every partition group
/// onto a worker, so the differential suite exercises the full shipping
/// path no matter how small the workload; `None` keeps the default
/// adaptive granularity, where small groups execute coordinator-side
/// and sparse stretches run on the plain sequential loop.
fn observe_at_threshold(cfg: &Config, workers: usize, threshold: Option<usize>) -> Obs {
    let (mut sim, logs) = build(cfg);
    if let Some(t) = threshold {
        sim.set_parallel_ship_threshold(t);
    }
    let horizon = SimTime::from_micros(300);
    if workers <= 1 {
        sim.run_until(horizon);
    } else {
        sim.run_until_workers(horizon, workers);
        // Equivalence must be earned by the parallel engine, not by a
        // silent sequential fallback. (Only enforceable when groups are
        // force-shipped: the adaptive default may legitimately run a
        // sparse workload entirely on sequential stretches.)
        if threshold == Some(0) {
            assert!(
                sim.synthetic_events() > 0,
                "run_until_workers fell back to the sequential path"
            );
        }
    }
    let counters = (0..cfg.pairs * 2)
        .map(|h| format!("{:?}", sim.counters(HostId(h))))
        .collect();
    Obs {
        events: sim.events_processed(),
        order: sim.order_digest(),
        fabric: sim.fabric_stats(),
        fault: sim.fault_trace_digest(),
        counters,
        logs: logs.iter().map(LogHandle::snapshot).collect(),
    }
}

fn assert_equivalent(cfg: &Config) {
    let oracle = observe(cfg, 1);
    assert!(oracle.events > 0, "workload produced no events");
    assert!(
        !oracle.logs.iter().all(|l| l.is_empty()),
        "workload produced no completions"
    );
    for workers in [2usize, 4, 8] {
        let par = observe(cfg, workers);
        assert_eq!(oracle, par, "divergence at workers={workers}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn parallel_matches_oracle(
        seed in any::<u64>(),
        pairs in 1u32..5,
        rounds in 1u32..12,
        fabric in any::<bool>(),
        chaos in any::<bool>(),
    ) {
        assert_equivalent(&Config {
            seed,
            pairs,
            rounds,
            fabric,
            chaos,
            backend: QueueBackend::Calendar,
            apps: Apps::Local,
        });
    }
}

#[test]
fn legacy_wire_chaos_reference_backend() {
    assert_equivalent(&Config {
        seed: 17,
        pairs: 3,
        rounds: 8,
        fabric: false,
        chaos: true,
        backend: QueueBackend::Reference,
        apps: Apps::Local,
    });
}

#[test]
fn fabric_dense_pairs() {
    assert_equivalent(&Config {
        seed: 23,
        pairs: 4,
        rounds: 10,
        fabric: true,
        chaos: false,
        backend: QueueBackend::Calendar,
        apps: Apps::Local,
    });
}

#[test]
fn fabric_chaos_heavy() {
    assert_equivalent(&Config {
        seed: 29,
        pairs: 4,
        rounds: 9,
        fabric: true,
        chaos: true,
        backend: QueueBackend::Calendar,
        apps: Apps::Local,
    });
}

/// An app without a declared scope forces the sequential fallback —
/// results still match the oracle (because it *is* the oracle).
#[test]
fn unscoped_app_falls_back_sequentially() {
    let cfg = Config {
        seed: 31,
        pairs: 2,
        rounds: 6,
        fabric: false,
        chaos: false,
        backend: QueueBackend::Calendar,
        apps: Apps::Local,
    };
    let build_unscoped = || {
        let (mut sim, logs) = build(&cfg);
        // Wipe one scope: eligibility now fails.
        let extra = sim.add_app(Box::new(Idle));
        let _ = extra;
        (sim, logs)
    };
    let horizon = SimTime::from_micros(300);
    let (mut seq, _) = build_unscoped();
    seq.run_until(horizon);
    let (mut par, _) = build_unscoped();
    par.run_until_workers(horizon, 8);
    assert_eq!(seq.order_digest(), par.order_digest());
    assert_eq!(seq.events_processed(), par.events_processed());
}

struct Idle;
impl App for Idle {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
}

/// Scope enforcement: a scoped app touching a host outside its
/// footprint panics on every engine.
#[test]
#[should_panic(expected = "outside its declared scope")]
fn scope_violation_panics() {
    struct Trespasser {
        other: HostId,
    }
    impl App for Trespasser {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let _ = ctx.counters(self.other);
        }
    }
    let mut sim = Simulation::new(3);
    let a = sim.add_host(DeviceProfile::connectx5());
    let b = sim.add_host(DeviceProfile::connectx5());
    let app = sim.add_app(Box::new(Trespasser { other: b }));
    sim.set_app_scope(app, &[a]);
    sim.run_until(SimTime::from_micros(1));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Send apps (`add_send_app`) run their timer and completion
    /// callbacks worker-side with no coordinator barrier; the result
    /// must still be bit-identical to the sequential oracle, whether
    /// the app's scope covers the whole pair or just its home host
    /// (the latter splits every pair into two partition groups).
    #[test]
    fn send_apps_match_oracle(
        seed in any::<u64>(),
        pairs in 1u32..5,
        rounds in 1u32..12,
        fabric in any::<bool>(),
        chaos in any::<bool>(),
        home_scope in any::<bool>(),
    ) {
        assert_equivalent(&Config {
            seed,
            pairs,
            rounds,
            fabric,
            chaos,
            backend: QueueBackend::Calendar,
            apps: Apps::Send { home_scope },
        });
    }
}

/// The default adaptive granularity — small groups inlined
/// coordinator-side, sparse stretches run on the plain sequential loop,
/// dense groups shipped — must land on the same bits as both the oracle
/// and the force-ship configuration.
#[test]
fn adaptive_granularity_matches_oracle() {
    for apps in [Apps::Local, Apps::Send { home_scope: true }, Apps::Mixed] {
        let cfg = Config {
            seed: 43,
            pairs: 4,
            rounds: 10,
            fabric: true,
            chaos: true,
            backend: QueueBackend::Calendar,
            apps,
        };
        let oracle = observe(&cfg, 1);
        for threshold in [None, Some(4)] {
            let par = observe_at_threshold(&cfg, 8, threshold);
            assert_eq!(
                oracle, par,
                "divergence at threshold {threshold:?} ({apps:?})"
            );
        }
    }
}

/// Coordinator apps and send apps in the same simulation: barrier
/// rounds and worker-side callbacks interleave, and the merge must
/// still reproduce the oracle exactly.
#[test]
fn mixed_apps_fabric_chaos() {
    assert_equivalent(&Config {
        seed: 37,
        pairs: 4,
        rounds: 9,
        fabric: true,
        chaos: true,
        backend: QueueBackend::Calendar,
        apps: Apps::Mixed,
    });
}

/// Send apps must not touch the world RNG stream — the restriction is
/// enforced on the sequential engine too, so the oracle itself rejects
/// a workload the parallel engine could not replay.
#[test]
#[should_panic(expected = "not available to send apps")]
fn send_app_rng_is_denied_on_the_oracle() {
    struct RngThief;
    impl App for RngThief {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let _ = ctx.rng().next_u64();
        }
    }
    let mut sim = Simulation::new(5);
    let a = sim.add_host(DeviceProfile::connectx5());
    let app = sim.add_send_app(Box::new(RngThief));
    sim.set_app_scope(app, &[a]);
    sim.run_until(SimTime::from_micros(1));
}

/// `--workers`-style invariance across the queue backends too: the
/// parallel engine sits behind the same `EventSchedule` seam, so
/// calendar and reference queues agree under every worker count.
#[test]
fn backends_agree_under_workers() {
    let mk = |backend| Config {
        seed: 41,
        pairs: 3,
        rounds: 7,
        fabric: false,
        chaos: true,
        backend,
        apps: Apps::Local,
    };
    let a = observe(&mk(QueueBackend::Calendar), 8);
    let b = observe(&mk(QueueBackend::Reference), 8);
    assert_eq!(a, b);
}
