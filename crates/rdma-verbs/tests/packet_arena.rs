//! Packet-arena regression suite: the slab arena must never copy a
//! payload on the hot path. A packet is allocated exactly once at
//! creation, passes every wire hop and chaos injection point by
//! [`PacketHandle`], and is freed exactly once at its terminal event
//! (delivery, wire loss, injector drop, or ICRC discard). The only
//! header-row copy a run is allowed to make is for a chaos duplication
//! fault — and even that shares the payload bytes by refcount.
//!
//! These tests pin that contract through the arena's own ledger
//! ([`ArenaStats`]) instead of through allocator instrumentation, so
//! they hold on every platform and under every queue backend.

use rdma_verbs::{
    AccessFlags, ConnectOptions, DeviceProfile, FaultEvent, FaultKind, FaultPlan, LinkSelector,
    QueueBackend, Simulation, Topology, WorkRequest,
};
use sim_core::SimTime;

/// Builds a four-host leaf-spine fabric with two requesters hammering
/// one responder, posts `per_qp` closed-loop reads on each QP, and
/// drains the event queue completely (no timers re-arm, so a generous
/// horizon empties the world).
fn run_fabric(seed: u64, plan: Option<&FaultPlan>) -> Simulation {
    let topo = Topology::from_spec("leaf-spine:hosts=4,leaves=2,spines=2").expect("spec");
    let mut sim = Simulation::with_topology(seed, topo, None);
    if let Some(p) = plan {
        sim.install_fault_plan(p);
    }
    let r0 = sim.add_host(DeviceProfile::connectx5());
    let r1 = sim.add_host(DeviceProfile::connectx5());
    let responder = sim.add_host(DeviceProfile::connectx5());
    let pd0 = sim.alloc_pd(r0);
    let pd1 = sim.alloc_pd(r1);
    let pd_s = sim.alloc_pd(responder);
    let mr = sim.register_mr(responder, pd_s, 1 << 20, AccessFlags::remote_all());
    let (qa, _) = sim.connect(r0, pd0, responder, pd_s, ConnectOptions::default());
    let (qb, _) = sim.connect(r1, pd1, responder, pd_s, ConnectOptions::default());
    let mut wr_id = 0u64;
    for &qp in &[qa, qb] {
        for _ in 0..16 {
            wr_id += 1;
            sim.post_send(
                qp,
                WorkRequest::read(wr_id, 0x1000, mr.addr(0), mr.key, 256),
            )
            .expect("post");
        }
    }
    sim.run_until(SimTime::from_millis(50));
    sim
}

/// The satellite regression: a fault-free run makes ZERO packet copies.
/// Every hop moves a handle; the payload bytes allocated at creation are
/// the only payload bytes that ever exist.
#[test]
fn fault_free_run_never_copies_a_packet() {
    let sim = run_fabric(7, None);
    let stats = sim.packet_arena_stats();
    assert!(stats.allocs > 0, "workload moved no packets");
    assert_eq!(
        stats.dup_clones, 0,
        "a fault-free run cloned a packet: the hot path regressed to copying"
    );
    assert_eq!(
        stats.live(),
        0,
        "arena leak: {} packets allocated, {} freed",
        stats.allocs,
        stats.frees
    );
}

/// Allocations track *packets*, not *hops*: on a multi-hop fabric every
/// transmitted packet crosses several links, yet the arena allocates
/// exactly once per packet handed to the wire. If a hop ever clones,
/// `allocs` outgrows the fabric's `sent + duplicates` ledger.
#[test]
fn allocations_count_packets_not_hops() {
    let sim = run_fabric(11, None);
    let stats = sim.packet_arena_stats();
    let fabric = sim.fabric_stats();
    assert!(fabric.delivered > 0, "nothing crossed the fabric");
    assert!(fabric.conserved(), "fabric ledger unbalanced: {fabric:?}");
    assert_eq!(
        stats.allocs,
        fabric.sent + fabric.duplicates,
        "arena allocated more than once per wire packet (per-hop copy?)"
    );
}

/// Chaos duplication is the *only* copy: the duplicated header row shows
/// up in `dup_clones`, matches the fabric's duplicate count exactly, and
/// both the original and the copy still terminate (no leaks).
#[test]
fn chaos_duplication_is_the_only_copy() {
    let mut plan = FaultPlan::empty(0xd0b);
    plan.events.push(FaultEvent {
        link: LinkSelector::Any,
        from: SimTime::ZERO,
        until: SimTime::from_millis(1),
        kind: FaultKind::Duplicate { prob: 0.4 },
    });
    let sim = run_fabric(13, Some(&plan));
    let stats = sim.packet_arena_stats();
    let fabric = sim.fabric_stats();
    assert!(
        stats.dup_clones > 0,
        "duplication plan produced no duplicates (chance too low for this seed?)"
    );
    assert_eq!(
        stats.dup_clones, fabric.duplicates,
        "every clone must be a chaos duplicate and vice versa"
    );
    assert_eq!(stats.live(), 0, "duplicated packets leaked");
}

/// Wire loss frees the packet at the drop point: allocations and frees
/// balance even when packets never reach their terminal Deliver event.
#[test]
fn lossy_run_frees_dropped_packets() {
    let mut plan = FaultPlan::empty(0x1055);
    plan.events.push(FaultEvent {
        link: LinkSelector::Any,
        from: SimTime::ZERO,
        until: SimTime::from_millis(1),
        kind: FaultKind::LossBurst { rate: 0.2 },
    });
    let sim = run_fabric(17, Some(&plan));
    let stats = sim.packet_arena_stats();
    let fabric = sim.fabric_stats();
    assert!(fabric.dropped > 0, "loss plan dropped nothing");
    assert_eq!(stats.dup_clones, 0, "loss must not clone");
    assert_eq!(stats.live(), 0, "dropped packets leaked");
}

/// The legacy (topology-free) wire obeys the same ledger on both queue
/// backends — the Reference backend never batches hops, so this also
/// pins that batching is an optimization of the calendar path only.
#[test]
fn legacy_wire_is_copy_free_on_both_backends() {
    for backend in [QueueBackend::Calendar, QueueBackend::Reference] {
        let mut sim = Simulation::with_backend(19, backend);
        let requester = sim.add_host(DeviceProfile::connectx5());
        let responder = sim.add_host(DeviceProfile::connectx5());
        let pd_r = sim.alloc_pd(requester);
        let pd_s = sim.alloc_pd(responder);
        let mr = sim.register_mr(responder, pd_s, 1 << 20, AccessFlags::remote_all());
        let (qp, _) = sim.connect(requester, pd_r, responder, pd_s, ConnectOptions::default());
        for wr_id in 0..32u64 {
            sim.post_send(
                qp,
                WorkRequest::read(wr_id, 0x1000, mr.addr(0), mr.key, 256),
            )
            .expect("post");
        }
        sim.run_until(SimTime::from_millis(50));
        let stats = sim.packet_arena_stats();
        assert!(stats.allocs > 0, "no packets on {backend:?}");
        assert_eq!(stats.dup_clones, 0, "clone on {backend:?}");
        assert_eq!(stats.live(), 0, "leak on {backend:?}");
    }
}

/// The parallel engine's round-local arenas obey the same conservation:
/// packets re-home across the worker boundary (egress checkout, detach /
/// attach, cooked transmits) without ever being copied or leaked.
#[test]
fn parallel_engine_conserves_packets() {
    let topo = Topology::from_spec("leaf-spine:hosts=4,leaves=2,spines=2").expect("spec");
    let mut sim = Simulation::with_topology(23, topo, None);
    let r0 = sim.add_host(DeviceProfile::connectx5());
    let r1 = sim.add_host(DeviceProfile::connectx5());
    let responder = sim.add_host(DeviceProfile::connectx5());
    let pd0 = sim.alloc_pd(r0);
    let pd1 = sim.alloc_pd(r1);
    let pd_s = sim.alloc_pd(responder);
    let mr = sim.register_mr(responder, pd_s, 1 << 20, AccessFlags::remote_all());
    let (qa, _) = sim.connect(r0, pd0, responder, pd_s, ConnectOptions::default());
    let (qb, _) = sim.connect(r1, pd1, responder, pd_s, ConnectOptions::default());
    for &qp in &[qa, qb] {
        for wr_id in 0..16u64 {
            sim.post_send(
                qp,
                WorkRequest::read(wr_id, 0x1000, mr.addr(0), mr.key, 256),
            )
            .expect("post");
        }
    }
    sim.set_parallel_ship_threshold(0);
    sim.run_until_workers(SimTime::from_millis(50), 4);
    let stats = sim.packet_arena_stats();
    assert!(stats.allocs > 0, "parallel run moved no packets");
    assert_eq!(stats.dup_clones, 0, "parallel run cloned a packet");
    assert_eq!(stats.live(), 0, "parallel run leaked packets");
}
