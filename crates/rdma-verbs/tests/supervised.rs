//! Supervised execution over the verbs fabric: induced worker crashes
//! and stalls mid-window must leave every observable — order digest,
//! event count, fabric ledger, NIC counters, app completion logs —
//! bit-identical to the unfaulted sequential oracle, at every worker
//! count. The supervisor's activity is visible only through
//! [`Simulation::supervisor_stats`].

use rdma_verbs::{
    AccessFlags, App, ConnectOptions, Ctx, DeviceProfile, HostId, MrHandle, QpHandle, Simulation,
    WorkRequest,
};
use sim_core::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Ambient supervision is process-global; tests in this binary take the
/// lock, install their policy, and restore `None` on drop so parallel
/// test threads never see each other's hooks.
static AMBIENT: Mutex<()> = Mutex::new(());

struct AmbientGuard<'a>(#[allow(dead_code)] MutexGuard<'a, ()>);

impl<'a> AmbientGuard<'a> {
    fn install(policy: Option<pdes::PoolPolicy>) -> AmbientGuard<'a> {
        let g = AMBIENT.lock().unwrap_or_else(PoisonError::into_inner);
        pdes::set_ambient_supervision(policy);
        AmbientGuard(g)
    }
}

impl Drop for AmbientGuard<'_> {
    fn drop(&mut self) {
        pdes::set_ambient_supervision(None);
    }
}

type Log = Rc<RefCell<Vec<(u64, u64)>>>;

/// Two-host traffic generator (same shape as the PDES differential
/// suite's `Pinger`): posts read/write bursts from a timer and logs
/// every completion.
struct Pinger {
    qp: QpHandle,
    mr: MrHandle,
    rounds: u32,
    log: Log,
}

impl App for Pinger {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let jitter = ctx.rng().next_u64() % 2_000;
        ctx.set_timer(SimDuration::from_nanos(50 + jitter), 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let burst = 1 + ctx.rng().next_u64() % 3;
        for i in 0..burst {
            let wr_id = u64::from(self.rounds) << 8 | i;
            let off = (ctx.rng().next_u64() % 64) * 64;
            let wr = if ctx.rng().chance(0.5) {
                WorkRequest::read(wr_id, 0x10_0000 + off, self.mr.addr(off), self.mr.key, 64)
            } else {
                WorkRequest::write(wr_id, 0x10_0000 + off, self.mr.addr(off), self.mr.key, 64)
            };
            let _ = ctx.post_send(self.qp, wr);
        }
        if self.rounds > 0 {
            self.rounds -= 1;
            let gap = 200 + ctx.rng().next_u64() % 3_000;
            ctx.set_timer(SimDuration::from_nanos(gap), 0);
        }
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_>, _host: HostId, cqe: rdma_verbs::Cqe) {
        self.log
            .borrow_mut()
            .push((cqe.wr_id, cqe.completed_at.as_picos()));
        let _ = ctx;
    }
}

fn build(seed: u64, pairs: u32, rounds: u32) -> (Simulation, Vec<Log>) {
    let mut sim = Simulation::new(seed);
    let mut logs = Vec::new();
    for p in 0..pairs {
        let a = sim.add_host(DeviceProfile::connectx5());
        let b = sim.add_host(DeviceProfile::connectx5());
        let pd_a = sim.alloc_pd(a);
        let pd_b = sim.alloc_pd(b);
        let mr_b = sim.register_mr(b, pd_b, 2 * 1024 * 1024, AccessFlags::remote_all());
        let (qa, _qb) = sim.connect(a, pd_a, b, pd_b, ConnectOptions::default());
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let app = sim.add_app(Box::new(Pinger {
            qp: qa,
            mr: mr_b,
            rounds: rounds + p % 3,
            log: Rc::clone(&log),
        }));
        sim.set_app_scope(app, &[a, b]);
        sim.own_qp(app, qa);
        logs.push(log);
    }
    (sim, logs)
}

#[derive(Debug, PartialEq)]
struct Obs {
    events: u64,
    order: u64,
    fabric: rdma_verbs::FabricStats,
    counters: Vec<String>,
    logs: Vec<Vec<(u64, u64)>>,
}

fn observe(seed: u64, pairs: u32, rounds: u32, workers: usize) -> (Obs, Simulation) {
    let (mut sim, logs) = build(seed, pairs, rounds);
    sim.set_parallel_ship_threshold(0);
    let horizon = SimTime::from_micros(300);
    if workers <= 1 {
        sim.run_until(horizon);
    } else {
        sim.run_until_workers(horizon, workers);
    }
    let counters = (0..pairs * 2)
        .map(|h| format!("{:?}", sim.counters(HostId(h))))
        .collect();
    let obs = Obs {
        events: sim.events_processed(),
        order: sim.order_digest(),
        fabric: sim.fabric_stats(),
        counters,
        logs: logs.iter().map(|l| l.borrow().clone()).collect(),
    };
    (obs, sim)
}

/// Worker crashes induced by a seed-derived exec-fault plan: the run
/// completes, the supervisor records the panics and replays, and every
/// observable matches the unfaulted oracle at workers 1, 2, 4 and 8.
#[test]
fn induced_worker_crashes_keep_digests_bit_identical() {
    let (oracle, _) = observe(61, 3, 8, 1);
    assert!(oracle.events > 0, "workload produced no events");

    let plan = rdma_verbs::ExecFaultPlan::generate(61, &rdma_verbs::ExecPlanParams::default());
    assert!(!plan.is_empty());
    for workers in [2usize, 4, 8] {
        let _guard = AmbientGuard::install(Some(pdes::PoolPolicy {
            stall_timeout: Some(Duration::from_millis(100)),
            max_respawns: 64,
            fault_hook: Some(plan.to_hook()),
        }));
        let (faulted, sim) = observe(61, 3, 8, workers);
        assert_eq!(
            oracle, faulted,
            "divergence under faults at workers={workers}"
        );
        let stats = sim
            .supervisor_stats()
            .expect("supervised run must record stats");
        assert!(
            stats.health.panics > 0,
            "exec plan never fired at workers={workers}: {stats:?}"
        );
        assert!(
            stats.replayed_jobs > 0,
            "returned jobs were not replayed at workers={workers}: {stats:?}"
        );
    }
}

/// A stalled worker is quarantined by the heartbeat watchdog and its
/// slot respawned; the late result is still folded in, so digests hold.
#[test]
fn stalled_worker_is_quarantined_without_divergence() {
    let (oracle, _) = observe(67, 2, 6, 1);
    let hook: pdes::ExecFaultHook = std::sync::Arc::new(|worker, round| {
        (worker == 0 && round == 1)
            .then_some(pdes::InjectedExecFault::Stall(Duration::from_millis(30)))
    });
    let _guard = AmbientGuard::install(Some(pdes::PoolPolicy {
        stall_timeout: Some(Duration::from_millis(5)),
        max_respawns: 8,
        fault_hook: Some(hook),
    }));
    let (faulted, sim) = observe(67, 2, 6, 4);
    assert_eq!(oracle, faulted, "divergence under an induced stall");
    let stats = sim.supervisor_stats().expect("supervised run");
    assert!(stats.health.stalls > 0, "watchdog never fired: {stats:?}");
    assert!(
        stats.health.respawns > 0,
        "stalled slot not respawned: {stats:?}"
    );
}

/// Without ambient supervision the fast path runs and records nothing.
#[test]
fn unsupervised_runs_record_no_stats() {
    let _guard = AmbientGuard::install(None);
    let (_, sim) = observe(71, 2, 5, 4);
    assert!(sim.supervisor_stats().is_none());
}
