//! # ragnar-topology — cluster-scale fabrics for the Ragnar testbed
//!
//! Everything the point-to-point world of `rdma-verbs` needs to grow
//! into a shared datacenter fabric:
//!
//! * [`TopologySpec`] — a declarative, canonicalizable spec grammar
//!   (`p2p`, `leaf-spine:hosts=256,leaves=8,spines=4`, `fat-tree:k=4`)
//!   suitable for CLI flags and harness cache keys.
//! * [`Topology`] — the built fabric: hosts, switches, directed
//!   [`Link`]s, and per-pair equal-cost route enumeration.
//! * [`ecmp`] — deterministic flow hashing over equal-cost path sets:
//!   pure-function selection that is identical across thread counts and
//!   invariant under permutation of the candidate set.
//! * [`FabricRuntime`] — per-link occupancy, serialization, per-port
//!   ingress counters, and PFC pause/resume state (the enforcement half
//!   is wired to `ragnar-defense`'s `PfcWatchdog` downstream).
//! * [`traffic`] — open-loop multi-tenant generators
//!   (attacker/victim/bystander populations with seed-derived Poisson
//!   arrival processes).
//!
//! The crate is deliberately free of any dependency on the verbs layer:
//! it describes fabrics and traffic; `rdma-verbs` executes them. Host
//! indices in a topology are, by convention, the `HostId`s of the
//! simulation driving it (host *n* of the spec is `HostId(n)`).

#![warn(missing_docs)]

pub mod ecmp;
mod fabric;
mod port;
mod spec;
pub mod traffic;

pub use ecmp::FlowKey;
pub use fabric::{Link, LinkId, NodeId, Route, Topology, MAX_HOPS};
pub use port::{FabricRuntime, PfcPortConfig, PortCounters};
pub use spec::{SpecError, TopologySpec};
