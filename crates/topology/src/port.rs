//! Per-link runtime state: occupancy, serialization, ingress counters,
//! and PFC pause gates.
//!
//! The event core stays in `rdma-verbs`; this module is the pure state
//! machine it calls into for every hop. A link is modeled as a single
//! egress queue with an analytic backlog — `busy_until` tracks when the
//! transmitter drains, and backlog in bytes is what that horizon
//! implies at line rate. That keeps the fabric allocation-free (no
//! queued-packet lists) while still producing head-of-line blocking,
//! serialization under load, and PFC back-pressure.

use crate::fabric::{LinkId, NodeId, Route, Topology};
use rnic_model::TrafficClass;
use sim_core::{SimDuration, SimTime};

/// PFC thresholds applied at every switch egress queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PfcPortConfig {
    /// Backlog (bytes) beyond which the congested hop pauses its
    /// upstream transmitter for the packet's traffic class.
    pub xoff_bytes: u64,
    /// How long one pause frame silences the upstream link. Resume is
    /// implicit at expiry (XON is not modeled as a separate frame).
    pub pause: SimDuration,
}

impl Default for PfcPortConfig {
    fn default() -> Self {
        // ~one jumbo-frame burst at 100 Gb/s; a few microseconds of
        // quiet per pause frame, matching the defense watchdog's scale.
        PfcPortConfig {
            xoff_bytes: 32 * 1024,
            pause: SimDuration::from_micros(2),
        }
    }
}

/// Ingress accounting for one directed link, in the same shape the
/// defense layer's NIC counters use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortCounters {
    /// Bytes carried, split by traffic class.
    pub rx_bytes_per_tc: [u64; TrafficClass::COUNT],
    /// Packets carried.
    pub rx_packets: u64,
    /// Packets chaos dropped *on this link* (multi-hop attribution).
    pub dropped: u64,
    /// Pause frames this link's transmitter received.
    pub pauses_taken: u64,
}

impl PortCounters {
    /// Total bytes across all traffic classes.
    pub fn rx_bytes(&self) -> u64 {
        self.rx_bytes_per_tc.iter().sum()
    }
}

#[derive(Debug, Clone, Copy)]
struct LinkState {
    busy_until: SimTime,
    paused_until: [SimTime; TrafficClass::COUNT],
}

impl LinkState {
    const IDLE: LinkState = LinkState {
        busy_until: SimTime::ZERO,
        paused_until: [SimTime::ZERO; TrafficClass::COUNT],
    };
}

/// What one hop traversal did, beyond the arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopOutcome {
    /// When the packet lands at the link's `dst` node.
    pub arrival: SimTime,
    /// Pause emitted to the upstream link (`Some` only when PFC is on,
    /// the egress backlog crossed XOFF, and the hop has an upstream).
    pub paused_upstream: Option<LinkId>,
}

/// Mutable fabric state for one simulation: per-link occupancy and
/// counters over an immutable [`Topology`].
#[derive(Debug, Clone)]
pub struct FabricRuntime {
    topo: Topology,
    links: Vec<LinkState>,
    counters: Vec<PortCounters>,
    pfc: Option<PfcPortConfig>,
}

impl FabricRuntime {
    /// Fresh runtime over a built fabric.
    pub fn new(topo: Topology, pfc: Option<PfcPortConfig>) -> FabricRuntime {
        let n = topo.links().len();
        FabricRuntime {
            topo,
            links: vec![LinkState::IDLE; n],
            counters: vec![PortCounters::default(); n],
            pfc,
        }
    }

    /// The fabric this runtime executes.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Whether PFC pause generation is enabled.
    pub fn pfc(&self) -> Option<PfcPortConfig> {
        self.pfc
    }

    /// Analytic egress backlog of a link at `now`, in bytes.
    pub fn backlog_bytes(&self, now: SimTime, link: LinkId) -> u64 {
        let st = &self.links[link.index()];
        if st.busy_until <= now {
            return 0;
        }
        let secs = st.busy_until.saturating_since(now).as_secs_f64();
        (secs * self.topo.link(link).rate_bps as f64 / 8.0) as u64
    }

    /// When transmission for `tc` may next start on a link (pause gate).
    pub fn paused_until(&self, link: LinkId, tc: TrafficClass) -> SimTime {
        self.links[link.index()].paused_until[tc.index()]
    }

    /// Silences a link's transmitter for one traffic class until at
    /// least `until` (later of the existing gate and the new one). Used
    /// both by fabric-emitted XOFF and by the defense watchdog.
    pub fn pause_link(&mut self, link: LinkId, tc: TrafficClass, until: SimTime) {
        let st = &mut self.links[link.index()];
        if until > st.paused_until[tc.index()] {
            st.paused_until[tc.index()] = until;
            self.counters[link.index()].pauses_taken += 1;
        }
    }

    /// Carries a packet across hop `hop` of `route`, starting no
    /// earlier than `now`: waits out the pause gate and any queue ahead,
    /// serializes at line rate, then propagates. Returns the arrival
    /// time at the hop's far node plus any PFC pause it emitted (the
    /// caller owns scheduling, so back-pressure is visible to
    /// telemetry).
    ///
    /// # Panics
    ///
    /// Panics if `hop` is out of range for the route.
    pub fn traverse(
        &mut self,
        now: SimTime,
        route: &Route,
        hop: usize,
        bytes: u64,
        tc: TrafficClass,
    ) -> HopOutcome {
        let link_id = route.hop(hop).expect("hop within route");
        let link = *self.topo.link(link_id);
        let st = &mut self.links[link_id.index()];
        let start = now
            .max_of(st.busy_until)
            .max_of(st.paused_until[tc.index()]);
        st.busy_until = start + SimDuration::serialization(bytes, link.rate_bps);
        let arrival = st.busy_until + link.latency;
        let ctr = &mut self.counters[link_id.index()];
        ctr.rx_packets += 1;
        ctr.rx_bytes_per_tc[tc.index()] += bytes;

        let mut paused_upstream = None;
        if let Some(cfg) = self.pfc {
            // Only switch egress queues emit PFC (hosts feel it as the
            // gate on their uplink), and only when there is an upstream
            // hop on this route to pause.
            if hop > 0
                && matches!(link.src, NodeId::Switch(_))
                && self.backlog_bytes(now, link_id) > cfg.xoff_bytes
            {
                let upstream = route.hop(hop - 1).expect("hop-1 within route");
                self.pause_link(upstream, tc, now + cfg.pause);
                paused_upstream = Some(upstream);
            }
        }
        HopOutcome {
            arrival,
            paused_upstream,
        }
    }

    /// Records a chaos drop against the physical link it happened on.
    pub fn note_link_drop(&mut self, link: LinkId) {
        self.counters[link.index()].dropped += 1;
    }

    /// Counters for one link.
    pub fn counters(&self, link: LinkId) -> &PortCounters {
        &self.counters[link.index()]
    }

    /// Counters for every link, indexed by [`LinkId`].
    pub fn all_counters(&self) -> &[PortCounters] {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowKey;
    use rnic_model::HostId;

    fn runtime(pfc: Option<PfcPortConfig>) -> FabricRuntime {
        let topo = Topology::from_spec("leaf-spine:hosts=8,leaves=2,spines=2").expect("build");
        FabricRuntime::new(topo, pfc)
    }

    fn cross_leaf_route(rt: &FabricRuntime) -> Route {
        rt.topology().route(
            HostId(0),
            HostId(7),
            FlowKey::new(HostId(0), HostId(7), 1, 2),
        )
    }

    #[test]
    fn hops_serialize_back_to_back() {
        let mut rt = runtime(None);
        let route = cross_leaf_route(&rt);
        let now = SimTime::from_micros(1);
        let a = rt
            .traverse(now, &route, 0, 1024, TrafficClass::new(0))
            .arrival;
        // Same link again: second packet queues behind the first.
        let b = rt
            .traverse(now, &route, 0, 1024, TrafficClass::new(0))
            .arrival;
        assert!(b > a);
        let ser = SimDuration::serialization(1024, rt.topology().link(route.links()[0]).rate_bps);
        assert_eq!(b, a + ser);
        assert_eq!(rt.counters(route.links()[0]).rx_packets, 2);
        assert_eq!(rt.counters(route.links()[0]).rx_bytes(), 2048);
    }

    #[test]
    fn pause_gates_transmission() {
        let mut rt = runtime(None);
        let route = cross_leaf_route(&rt);
        let tc = TrafficClass::new(3);
        let gate = SimTime::from_micros(10);
        // A class with no pause gate transmits immediately.
        let other = rt.traverse(SimTime::from_micros(1), &route, 0, 64, TrafficClass::new(0));
        assert!(other.arrival < gate);
        rt.pause_link(route.links()[0], tc, gate);
        let out = rt.traverse(SimTime::from_micros(1), &route, 0, 64, tc);
        assert!(out.arrival > gate, "transmission must wait out the pause");
    }

    #[test]
    fn xoff_pauses_the_upstream_link() {
        let mut rt = runtime(Some(PfcPortConfig {
            xoff_bytes: 2048,
            pause: SimDuration::from_micros(5),
        }));
        let route = cross_leaf_route(&rt);
        let tc = TrafficClass::new(0);
        let now = SimTime::from_micros(1);
        // Saturate the leaf→spine trunk (hop 1) past XOFF.
        let mut paused = None;
        for _ in 0..8 {
            let out = rt.traverse(now, &route, 1, 4096, tc);
            if out.paused_upstream.is_some() {
                paused = out.paused_upstream;
                break;
            }
        }
        let upstream = paused.expect("saturated trunk must emit XOFF");
        assert_eq!(upstream, route.links()[0], "pause lands on the feeding hop");
        assert!(rt.paused_until(upstream, tc) > now);
        assert_eq!(rt.counters(upstream).pauses_taken, 1);
        // Host uplinks (hop 0) never emit pause: no upstream to silence.
        let out = rt.traverse(now, &route, 0, 4096, tc);
        assert_eq!(out.paused_upstream, None);
    }

    #[test]
    fn drops_attribute_to_links() {
        let mut rt = runtime(None);
        let route = cross_leaf_route(&rt);
        rt.note_link_drop(route.links()[2]);
        rt.note_link_drop(route.links()[2]);
        assert_eq!(rt.counters(route.links()[2]).dropped, 2);
        assert_eq!(rt.counters(route.links()[0]).dropped, 0);
    }

    #[test]
    fn backlog_is_analytic() {
        let mut rt = runtime(None);
        let route = cross_leaf_route(&rt);
        let link = route.links()[0];
        let now = SimTime::from_micros(1);
        assert_eq!(rt.backlog_bytes(now, link), 0);
        rt.traverse(now, &route, 0, 100_000, TrafficClass::new(0));
        let b = rt.backlog_bytes(now, link);
        // The packet is still serializing: backlog ≈ its size.
        assert!(b > 90_000 && b <= 100_000, "backlog {b}");
        assert_eq!(rt.backlog_bytes(SimTime::from_millis(1), link), 0);
    }
}
