//! Open-loop multi-tenant traffic: who sits where, and when they send.
//!
//! The scenarios model three co-located populations — attackers,
//! victims, and bystanders — each driving the fabric *open-loop*: a
//! tenant's next message is scheduled from its own seed-derived arrival
//! process, never from completions, so an overloaded fabric builds queue
//! rather than politely self-throttling. That is the regime both the
//! Noisy-Neighbor exhaustion attack and the Bankrupt contention channel
//! need.
//!
//! Everything here is derived from `(seed, stream-name)` via
//! [`SimRng::derive`], so two simulations with the same seed produce
//! identical placements and identical arrival sequences regardless of
//! thread count or construction order.

use rnic_model::HostId;
use sim_core::{SimDuration, SimRng, SimTime};

/// Which population a host belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TenantRole {
    /// Drives hostile load (exhaustion or covert-channel modulation).
    Attacker,
    /// The tenant whose latency/loss we measure.
    Victim,
    /// Background tenants providing realistic ambient load.
    Bystander,
}

/// A seed-derived assignment of roles to hosts.
#[derive(Debug, Clone)]
pub struct Population {
    roles: Vec<TenantRole>,
}

impl Population {
    /// Places `victims` and `attackers` among `hosts` hosts (the rest
    /// become bystanders) by a seed-derived shuffle, so co-location is
    /// random but reproducible: same seed, same placement, on every
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if `victims + attackers > hosts`.
    pub fn sampled(hosts: u32, victims: u32, attackers: u32, seed: u64) -> Population {
        assert!(
            victims + attackers <= hosts,
            "{victims} victims + {attackers} attackers exceed {hosts} hosts"
        );
        let mut order: Vec<u32> = (0..hosts).collect();
        SimRng::derive(seed, "tenant-placement").shuffle(&mut order);
        let mut roles = vec![TenantRole::Bystander; hosts as usize];
        for &h in order.iter().take(victims as usize) {
            roles[h as usize] = TenantRole::Victim;
        }
        for &h in order.iter().skip(victims as usize).take(attackers as usize) {
            roles[h as usize] = TenantRole::Attacker;
        }
        Population { roles }
    }

    /// The role of one host.
    ///
    /// # Panics
    ///
    /// Panics if `h` is outside the population.
    pub fn role(&self, h: HostId) -> TenantRole {
        self.roles[h.0 as usize]
    }

    /// All hosts holding `role`, in ascending host order.
    pub fn hosts_with(&self, role: TenantRole) -> Vec<HostId> {
        self.roles
            .iter()
            .enumerate()
            .filter(|&(_, r)| *r == role)
            .map(|(h, _)| HostId(h as u32))
            .collect()
    }

    /// Number of hosts in the population.
    pub fn len(&self) -> usize {
        self.roles.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.roles.is_empty()
    }
}

/// The mean inter-arrival gap that offers `load` (fraction of line
/// rate) with `msg_bytes`-sized messages on a `rate_bps` link.
///
/// # Panics
///
/// Panics unless `0 < load`.
pub fn gap_for_load(load: f64, msg_bytes: u64, rate_bps: u64) -> SimDuration {
    assert!(load > 0.0, "offered load must be positive");
    SimDuration::serialization(msg_bytes, rate_bps).mul_f64(1.0 / load)
}

/// One tenant's open-loop Poisson arrival process: exponential
/// inter-arrival gaps around a mean, from a private RNG stream.
#[derive(Debug, Clone)]
pub struct OpenLoopGen {
    rng: SimRng,
    mean_gap: SimDuration,
    next_at: SimTime,
}

impl OpenLoopGen {
    /// A generator whose first arrival falls within one mean gap of
    /// `start` (a random phase, so tenants sharing a mean do not beat
    /// in lockstep). `stream` names the RNG stream — use one distinct
    /// name per tenant.
    pub fn poisson(seed: u64, stream: &str, start: SimTime, mean_gap: SimDuration) -> OpenLoopGen {
        let mut rng = SimRng::derive(seed, stream);
        let phase = mean_gap.mul_f64(rng.uniform());
        OpenLoopGen {
            rng,
            mean_gap,
            next_at: start + phase,
        }
    }

    /// A deterministic constant-gap generator (for probe clocks that
    /// must tick evenly, e.g. the covert-channel receiver).
    pub fn constant(start: SimTime, gap: SimDuration) -> OpenLoopGen {
        OpenLoopGen {
            rng: SimRng::seed_from(0),
            mean_gap: SimDuration::ZERO,
            next_at: start + gap,
        }
    }

    /// When the next message is due.
    pub fn next_at(&self) -> SimTime {
        self.next_at
    }

    /// Consumes the pending arrival and schedules the one after it.
    /// Returns the arrival time just consumed. Open-loop: callers
    /// schedule off this clock, never off completions.
    pub fn advance(&mut self, fixed_gap: Option<SimDuration>) -> SimTime {
        let due = self.next_at;
        let gap = match fixed_gap {
            Some(g) => g,
            None => {
                // Inverse-CDF exponential draw; uniform() < 1.0 keeps ln finite.
                let u = self.rng.uniform();
                self.mean_gap.mul_f64(-(1.0 - u).ln())
            }
        };
        self.next_at = due + gap;
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_seed_deterministic() {
        let a = Population::sampled(64, 2, 8, 7);
        let b = Population::sampled(64, 2, 8, 7);
        let c = Population::sampled(64, 2, 8, 8);
        assert_eq!(
            a.hosts_with(TenantRole::Victim),
            b.hosts_with(TenantRole::Victim)
        );
        assert_eq!(
            a.hosts_with(TenantRole::Attacker),
            b.hosts_with(TenantRole::Attacker)
        );
        assert_ne!(
            a.hosts_with(TenantRole::Attacker),
            c.hosts_with(TenantRole::Attacker),
            "different seed should move the attackers"
        );
        assert_eq!(a.hosts_with(TenantRole::Victim).len(), 2);
        assert_eq!(a.hosts_with(TenantRole::Attacker).len(), 8);
        assert_eq!(a.hosts_with(TenantRole::Bystander).len(), 54);
    }

    #[test]
    fn poisson_gaps_average_to_the_mean() {
        let mean = SimDuration::from_nanos(1000);
        let mut g = OpenLoopGen::poisson(42, "tenant-0", SimTime::ZERO, mean);
        let n = 4000;
        let first = g.advance(None);
        assert!(first <= SimTime::ZERO + mean, "phase within one mean gap");
        let mut last = first;
        for _ in 0..n {
            last = g.advance(None);
        }
        let avg_ns = last.saturating_since(first).as_nanos_f64() / f64::from(n);
        assert!(
            (avg_ns - 1000.0).abs() < 100.0,
            "mean gap drifted: {avg_ns} ns"
        );
    }

    #[test]
    fn same_stream_same_arrivals() {
        let mean = SimDuration::from_micros(1);
        let mut a = OpenLoopGen::poisson(9, "atk-3", SimTime::ZERO, mean);
        let mut b = OpenLoopGen::poisson(9, "atk-3", SimTime::ZERO, mean);
        for _ in 0..100 {
            assert_eq!(a.advance(None), b.advance(None));
        }
        let mut c = OpenLoopGen::poisson(9, "atk-4", SimTime::ZERO, mean);
        assert_ne!(a.advance(None), c.advance(None));
    }

    #[test]
    fn constant_generator_ticks_evenly() {
        let gap = SimDuration::from_nanos(500);
        let mut g = OpenLoopGen::constant(SimTime::from_micros(1), gap);
        let t0 = g.advance(Some(gap));
        let t1 = g.advance(Some(gap));
        let t2 = g.advance(Some(gap));
        assert_eq!(t0, SimTime::from_micros(1) + gap);
        assert_eq!(t1, t0 + gap);
        assert_eq!(t2, t1 + gap);
    }

    #[test]
    fn load_gap_matches_serialization() {
        // 4096 B at 100 Gb/s ≈ 327.68 ns on the wire; at 50% load the
        // mean gap is twice that.
        let gap = gap_for_load(0.5, 4096, 100_000_000_000);
        let ser = SimDuration::serialization(4096, 100_000_000_000);
        assert_eq!(gap, ser + ser);
    }
}
