//! The declarative topology grammar.
//!
//! A spec is a fabric *family* plus its parameters, written as
//! `family:key=value,key=value`. Three families exist:
//!
//! * `p2p[:hosts=N]` — every host on one non-blocking switch; the
//!   degenerate case covering the pre-topology world (default 2 hosts).
//! * `leaf-spine:hosts=H,leaves=L,spines=S[,gbps=G]` — a two-tier Clos:
//!   `H/L` hosts per leaf, every leaf wired to every spine. The leaf
//!   oversubscription ratio is `(H/L)/S`.
//! * `fat-tree:k=K[,gbps=G]` — the canonical k-ary fat tree: `K` pods,
//!   `K²/4` core switches, `K³/4` hosts.
//!
//! [`TopologySpec::canonical`] renders the spec back in a normal form —
//! the form the harness stores in cache keys, so two spellings of the
//! same fabric share cells.

use core::fmt;

/// Default link rate when a spec omits `gbps`.
pub const DEFAULT_GBPS: u64 = 100;

/// A parse or validation failure for a topology spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid topology spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// A parsed, validated topology description.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TopologySpec {
    /// All hosts on one non-blocking switch.
    PointToPoint {
        /// Number of hosts.
        hosts: u32,
        /// Link rate in Gbit/s.
        gbps: u64,
    },
    /// Two-tier leaf-spine Clos.
    LeafSpine {
        /// Total hosts (must divide evenly across leaves).
        hosts: u32,
        /// Leaf (ToR) switches.
        leaves: u32,
        /// Spine switches (each leaf uplinks to every spine).
        spines: u32,
        /// Link rate in Gbit/s (hosts and uplinks alike).
        gbps: u64,
    },
    /// k-ary fat tree (k pods, k³/4 hosts).
    FatTree {
        /// The arity `k` (even, ≥ 2).
        k: u32,
        /// Link rate in Gbit/s.
        gbps: u64,
    },
}

impl TopologySpec {
    /// Parses a spec string. See the module docs for the grammar.
    ///
    /// # Errors
    ///
    /// [`SpecError`] on unknown families, unknown keys, malformed
    /// values, or parameter combinations that do not describe a fabric
    /// (zero hosts, hosts not divisible by leaves, odd fat-tree arity).
    pub fn parse(s: &str) -> Result<TopologySpec, SpecError> {
        let s = s.trim();
        let (family, rest) = match s.split_once(':') {
            Some((f, r)) => (f.trim(), r),
            None => (s, ""),
        };
        let mut kv: Vec<(&str, u64)> = Vec::new();
        for part in rest.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| SpecError(format!("expected key=value, got '{part}'")))?;
            let v: u64 = v
                .trim()
                .parse()
                .map_err(|_| SpecError(format!("'{}' needs an integer, got '{}'", k.trim(), v)))?;
            kv.push((k.trim(), v));
        }
        let get = |name: &str| kv.iter().find(|(k, _)| *k == name).map(|&(_, v)| v);
        let known = |allowed: &[&str]| -> Result<(), SpecError> {
            for (k, _) in &kv {
                if !allowed.contains(k) {
                    return Err(SpecError(format!(
                        "unknown key '{k}' for '{family}' (expected one of: {})",
                        allowed.join(", ")
                    )));
                }
            }
            Ok(())
        };
        let gbps = get("gbps").unwrap_or(DEFAULT_GBPS);
        if gbps == 0 {
            return Err(SpecError("gbps must be positive".into()));
        }
        let spec = match family {
            "p2p" => {
                known(&["hosts", "gbps"])?;
                let hosts = get("hosts").unwrap_or(2);
                if hosts < 2 {
                    return Err(SpecError("p2p needs at least 2 hosts".into()));
                }
                TopologySpec::PointToPoint {
                    hosts: hosts as u32,
                    gbps,
                }
            }
            "leaf-spine" => {
                known(&["hosts", "leaves", "spines", "gbps"])?;
                let hosts =
                    get("hosts").ok_or_else(|| SpecError("leaf-spine needs hosts=".into()))?;
                let leaves =
                    get("leaves").ok_or_else(|| SpecError("leaf-spine needs leaves=".into()))?;
                let spines =
                    get("spines").ok_or_else(|| SpecError("leaf-spine needs spines=".into()))?;
                if hosts == 0 || leaves == 0 || spines == 0 {
                    return Err(SpecError(
                        "hosts, leaves and spines must be positive".into(),
                    ));
                }
                if hosts % leaves != 0 {
                    return Err(SpecError(format!(
                        "{hosts} hosts do not divide evenly across {leaves} leaves"
                    )));
                }
                if hosts / leaves < 1 {
                    return Err(SpecError("each leaf needs at least one host".into()));
                }
                TopologySpec::LeafSpine {
                    hosts: hosts as u32,
                    leaves: leaves as u32,
                    spines: spines as u32,
                    gbps,
                }
            }
            "fat-tree" => {
                known(&["k", "gbps"])?;
                let k = get("k").ok_or_else(|| SpecError("fat-tree needs k=".into()))?;
                if k < 2 || k % 2 != 0 {
                    return Err(SpecError(format!(
                        "fat-tree arity must be even and ≥ 2, got {k}"
                    )));
                }
                TopologySpec::FatTree { k: k as u32, gbps }
            }
            other => {
                return Err(SpecError(format!(
                    "unknown family '{other}' (expected p2p, leaf-spine or fat-tree)"
                )))
            }
        };
        Ok(spec)
    }

    /// The canonical spelling of the spec — what belongs in cache keys.
    pub fn canonical(&self) -> String {
        self.to_string()
    }

    /// Number of hosts the fabric exposes.
    pub fn hosts(&self) -> u32 {
        match *self {
            TopologySpec::PointToPoint { hosts, .. } => hosts,
            TopologySpec::LeafSpine { hosts, .. } => hosts,
            TopologySpec::FatTree { k, .. } => k * k * k / 4,
        }
    }

    /// Link rate in bits per second.
    pub fn rate_bps(&self) -> u64 {
        let gbps = match *self {
            TopologySpec::PointToPoint { gbps, .. } => gbps,
            TopologySpec::LeafSpine { gbps, .. } => gbps,
            TopologySpec::FatTree { gbps, .. } => gbps,
        };
        gbps * 1_000_000_000
    }

    /// The leaf oversubscription ratio (`1.0` for non-blocking fabrics):
    /// downlink capacity over uplink capacity at the host-facing tier.
    pub fn oversubscription(&self) -> f64 {
        match *self {
            TopologySpec::PointToPoint { .. } => 1.0,
            TopologySpec::LeafSpine {
                hosts,
                leaves,
                spines,
                ..
            } => f64::from(hosts / leaves) / f64::from(spines),
            TopologySpec::FatTree { .. } => 1.0,
        }
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TopologySpec::PointToPoint { hosts, gbps } => {
                write!(f, "p2p:hosts={hosts},gbps={gbps}")
            }
            TopologySpec::LeafSpine {
                hosts,
                leaves,
                spines,
                gbps,
            } => write!(
                f,
                "leaf-spine:hosts={hosts},leaves={leaves},spines={spines},gbps={gbps}"
            ),
            TopologySpec::FatTree { k, gbps } => write!(f, "fat-tree:k={k},gbps={gbps}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_canonical() {
        for s in [
            "p2p:hosts=2,gbps=100",
            "leaf-spine:hosts=256,leaves=8,spines=4,gbps=100",
            "fat-tree:k=4,gbps=100",
        ] {
            let spec = TopologySpec::parse(s).expect("parse");
            assert_eq!(spec.canonical(), s);
            assert_eq!(TopologySpec::parse(&spec.canonical()), Ok(spec));
        }
    }

    #[test]
    fn defaults_and_whitespace() {
        assert_eq!(
            TopologySpec::parse("p2p"),
            Ok(TopologySpec::PointToPoint {
                hosts: 2,
                gbps: DEFAULT_GBPS
            })
        );
        assert_eq!(
            TopologySpec::parse(" leaf-spine: hosts=16 , leaves=4, spines=2 "),
            Ok(TopologySpec::LeafSpine {
                hosts: 16,
                leaves: 4,
                spines: 2,
                gbps: DEFAULT_GBPS
            })
        );
    }

    #[test]
    fn invalid_specs_rejected() {
        for bad in [
            "mesh:hosts=4",
            "leaf-spine:hosts=10,leaves=3,spines=2",
            "leaf-spine:hosts=8,leaves=2",
            "fat-tree:k=3",
            "fat-tree:k=0",
            "p2p:hosts=1",
            "p2p:hosts=x",
            "leaf-spine:hosts=8,leaves=2,spines=2,radix=9",
            "p2p:hosts",
        ] {
            assert!(TopologySpec::parse(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn derived_quantities() {
        let ls = TopologySpec::parse("leaf-spine:hosts=256,leaves=8,spines=4").expect("parse");
        assert_eq!(ls.hosts(), 256);
        assert_eq!(ls.rate_bps(), 100_000_000_000);
        // 32 hosts per leaf over 4 uplinks: 8:1 oversubscribed.
        assert!((ls.oversubscription() - 8.0).abs() < 1e-12);
        let ft = TopologySpec::parse("fat-tree:k=4").expect("parse");
        assert_eq!(ft.hosts(), 16);
        assert!((ft.oversubscription() - 1.0).abs() < 1e-12);
    }
}
