//! The built fabric: nodes, directed links, and equal-cost routing.

use crate::ecmp::{self, FlowKey};
use crate::spec::TopologySpec;
use rnic_model::HostId;
use sim_core::SimDuration;

/// A node of the fabric graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeId {
    /// A simulated host (index == the simulation's `HostId`).
    Host(u32),
    /// A switch (leaf, spine, edge, aggregation or core).
    Switch(u32),
}

/// Identifies one *directed* link (a cable is two links, one per
/// direction), dense from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The link id as an index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One directed physical link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// Transmitting node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Propagation latency, including the source switch's forwarding
    /// delay when `src` is a switch.
    pub latency: SimDuration,
    /// Line rate in bits per second (serialization delay).
    pub rate_bps: u64,
}

/// The longest path any built fabric produces (fat-tree inter-pod:
/// host→edge→agg→core→agg→edge→host).
pub const MAX_HOPS: usize = 6;

/// A concrete path through the fabric: the ordered physical links a
/// packet traverses from source host to destination host.
///
/// Stored inline (`Copy`) so routing never allocates on the hot path.
/// Unused slots are padded with `LinkId(u32::MAX)`, which makes the
/// derived lexicographic ordering canonical for equal-length routes —
/// the ordering [`crate::ecmp::select`] relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Route {
    links: [LinkId; MAX_HOPS],
    len: u8,
}

impl Route {
    const PAD: LinkId = LinkId(u32::MAX);

    /// An empty route under construction.
    pub fn empty() -> Route {
        Route {
            links: [Self::PAD; MAX_HOPS],
            len: 0,
        }
    }

    /// Builds a route from hops in order.
    ///
    /// # Panics
    ///
    /// Panics when given more than [`MAX_HOPS`] links.
    pub fn of(links: &[LinkId]) -> Route {
        let mut r = Route::empty();
        for &l in links {
            r.push(l);
        }
        r
    }

    /// Appends a hop.
    ///
    /// # Panics
    ///
    /// Panics when the route is already [`MAX_HOPS`] long.
    pub fn push(&mut self, link: LinkId) {
        assert!((self.len as usize) < MAX_HOPS, "route longer than MAX_HOPS");
        self.links[self.len as usize] = link;
        self.len += 1;
    }

    /// The hops, in traversal order.
    pub fn links(&self) -> &[LinkId] {
        &self.links[..self.len as usize]
    }

    /// Number of hops.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the route has no hops.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The hop at `idx`, if within the route.
    pub fn hop(&self, idx: usize) -> Option<LinkId> {
        self.links().get(idx).copied()
    }
}

/// Family-specific routing indexes.
#[derive(Debug, Clone)]
enum Routing {
    /// One switch; routes are `[up(src), down(dst)]`.
    Star,
    LeafSpine {
        hosts_per_leaf: u32,
        spines: u32,
        /// `leaf_up[l * spines + s]` — leaf `l` to spine `s`.
        leaf_up: Vec<LinkId>,
        /// `spine_down[s * leaves + l]` — spine `s` to leaf `l`.
        spine_down: Vec<LinkId>,
    },
    FatTree {
        k: u32,
        /// `edge_up[(pod*edges + e) * aggs + a]` — edge `e` of `pod` to agg `a`.
        edge_up: Vec<LinkId>,
        /// `agg_down[(pod*aggs + a) * edges + e]`.
        agg_down: Vec<LinkId>,
        /// `agg_up[(pod*aggs + a) * ports + j]` — agg `a` of `pod` to core `(a,j)`.
        agg_up: Vec<LinkId>,
        /// `core_down[(a*ports + j) * pods + pod]` — core `(a,j)` to `pod`'s agg `a`.
        core_down: Vec<LinkId>,
    },
}

/// A built fabric: every node and directed link of the spec, plus the
/// equal-cost routing tables ECMP selects over.
#[derive(Debug, Clone)]
pub struct Topology {
    spec: TopologySpec,
    links: Vec<Link>,
    /// Per host: the (single) uplink into its first switch.
    host_up: Vec<LinkId>,
    /// Per host: the downlink from its first switch.
    host_down: Vec<LinkId>,
    switches: u32,
    routing: Routing,
}

/// Host cable propagation (one direction).
const HOST_LINK_LAT: SimDuration = SimDuration::from_nanos(250);
/// Switch-to-switch trunk propagation (one direction).
const TRUNK_LAT: SimDuration = SimDuration::from_nanos(500);
/// Store-and-forward latency a switch adds before its egress link.
const SWITCH_FORWARD: SimDuration = SimDuration::from_nanos(200);

impl Topology {
    /// Builds the fabric a spec describes.
    pub fn build(spec: &TopologySpec) -> Topology {
        match *spec {
            TopologySpec::PointToPoint { hosts, .. } => Self::build_star(spec.clone(), hosts),
            TopologySpec::LeafSpine {
                hosts,
                leaves,
                spines,
                ..
            } => Self::build_leaf_spine(spec.clone(), hosts, leaves, spines),
            TopologySpec::FatTree { k, .. } => Self::build_fat_tree(spec.clone(), k),
        }
    }

    /// Parses and builds in one step.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::SpecError`] from the parser.
    pub fn from_spec(s: &str) -> Result<Topology, crate::SpecError> {
        Ok(Self::build(&TopologySpec::parse(s)?))
    }

    fn new_shell(spec: TopologySpec) -> Topology {
        Topology {
            spec,
            links: Vec::new(),
            host_up: Vec::new(),
            host_down: Vec::new(),
            switches: 0,
            routing: Routing::Star,
        }
    }

    fn add_link(&mut self, src: NodeId, dst: NodeId, base_lat: SimDuration) -> LinkId {
        let forward = if matches!(src, NodeId::Switch(_)) {
            SWITCH_FORWARD
        } else {
            SimDuration::ZERO
        };
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            src,
            dst,
            latency: base_lat + forward,
            rate_bps: self.spec.rate_bps(),
        });
        id
    }

    /// Wires host `h` to switch `sw` (both directions), recording the
    /// up/down links in host order.
    fn wire_host(&mut self, h: u32, sw: u32) {
        let up = self.add_link(NodeId::Host(h), NodeId::Switch(sw), HOST_LINK_LAT);
        let down = self.add_link(NodeId::Switch(sw), NodeId::Host(h), HOST_LINK_LAT);
        debug_assert_eq!(self.host_up.len(), h as usize);
        self.host_up.push(up);
        self.host_down.push(down);
    }

    fn build_star(spec: TopologySpec, hosts: u32) -> Topology {
        let mut t = Self::new_shell(spec);
        t.switches = 1;
        for h in 0..hosts {
            t.wire_host(h, 0);
        }
        t.routing = Routing::Star;
        t
    }

    fn build_leaf_spine(spec: TopologySpec, hosts: u32, leaves: u32, spines: u32) -> Topology {
        let mut t = Self::new_shell(spec);
        // Switch ids: leaves first (0..leaves), then spines.
        t.switches = leaves + spines;
        let hosts_per_leaf = hosts / leaves;
        for h in 0..hosts {
            t.wire_host(h, h / hosts_per_leaf);
        }
        let mut leaf_up = Vec::with_capacity((leaves * spines) as usize);
        let mut spine_down = vec![LinkId(u32::MAX); (spines * leaves) as usize];
        for l in 0..leaves {
            for s in 0..spines {
                leaf_up.push(t.add_link(NodeId::Switch(l), NodeId::Switch(leaves + s), TRUNK_LAT));
                spine_down[(s * leaves + l) as usize] =
                    t.add_link(NodeId::Switch(leaves + s), NodeId::Switch(l), TRUNK_LAT);
            }
        }
        t.routing = Routing::LeafSpine {
            hosts_per_leaf,
            spines,
            leaf_up,
            spine_down,
        };
        t
    }

    fn build_fat_tree(spec: TopologySpec, k: u32) -> Topology {
        let mut t = Self::new_shell(spec);
        let half = k / 2;
        let pods = k;
        let edges = half; // edge switches per pod
        let aggs = half; // aggregation switches per pod
        let cores = half * half;
        // Switch ids: per pod [edges then aggs], then cores.
        // pod p: edge e -> p*(edges+aggs)+e ; agg a -> p*(edges+aggs)+edges+a
        // core (a, j) -> pods*(edges+aggs) + a*half + j
        t.switches = pods * (edges + aggs) + cores;
        let edge_sw = |p: u32, e: u32| p * (edges + aggs) + e;
        let agg_sw = |p: u32, a: u32| p * (edges + aggs) + edges + a;
        let core_sw = |a: u32, j: u32| pods * (edges + aggs) + a * half + j;
        // Hosts: half per edge switch, pods*edges*half total, numbered in
        // (pod, edge, slot) order.
        let mut h = 0;
        for p in 0..pods {
            for e in 0..edges {
                for _slot in 0..half {
                    t.wire_host(h, edge_sw(p, e));
                    h += 1;
                }
            }
        }
        let mut edge_up = Vec::with_capacity((pods * edges * aggs) as usize);
        let mut agg_down = vec![LinkId(u32::MAX); (pods * aggs * edges) as usize];
        for p in 0..pods {
            for e in 0..edges {
                for a in 0..aggs {
                    edge_up.push(t.add_link(
                        NodeId::Switch(edge_sw(p, e)),
                        NodeId::Switch(agg_sw(p, a)),
                        TRUNK_LAT,
                    ));
                    agg_down[(((p * aggs) + a) * edges + e) as usize] = t.add_link(
                        NodeId::Switch(agg_sw(p, a)),
                        NodeId::Switch(edge_sw(p, e)),
                        TRUNK_LAT,
                    );
                }
            }
        }
        let mut agg_up = Vec::with_capacity((pods * aggs * half) as usize);
        let mut core_down = vec![LinkId(u32::MAX); (cores * pods) as usize];
        for p in 0..pods {
            for a in 0..aggs {
                for j in 0..half {
                    agg_up.push(t.add_link(
                        NodeId::Switch(agg_sw(p, a)),
                        NodeId::Switch(core_sw(a, j)),
                        TRUNK_LAT,
                    ));
                    core_down[((a * half + j) * pods + p) as usize] = t.add_link(
                        NodeId::Switch(core_sw(a, j)),
                        NodeId::Switch(agg_sw(p, a)),
                        TRUNK_LAT,
                    );
                }
            }
        }
        t.routing = Routing::FatTree {
            k,
            edge_up,
            agg_down,
            agg_up,
            core_down,
        };
        t
    }

    /// The spec the fabric was built from.
    pub fn spec(&self) -> &TopologySpec {
        &self.spec
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> u32 {
        self.host_up.len() as u32
    }

    /// Number of switches.
    pub fn num_switches(&self) -> u32 {
        self.switches
    }

    /// Every directed link, indexed by [`LinkId`].
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// One link's descriptor.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// The host's uplink into its first-hop switch.
    ///
    /// # Panics
    ///
    /// Panics if `h` is not a host of this fabric.
    pub fn host_uplink(&self, h: HostId) -> LinkId {
        self.host_up[h.0 as usize]
    }

    /// The downlink delivering into host `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is not a host of this fabric.
    pub fn host_downlink(&self, h: HostId) -> LinkId {
        self.host_down[h.0 as usize]
    }

    /// The ECMP-selected route for one flow — a pure function of
    /// `(fabric, src, dst, key)`: identical on every thread, every run.
    ///
    /// Equivalent to `ecmp::select(key, &mut self.equal_cost_routes(..))`
    /// but allocation-free; the equivalence is property-tested.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is not a host of this fabric, or if
    /// `src == dst` (loopback never reaches the wire).
    pub fn route(&self, src: HostId, dst: HostId, key: FlowKey) -> Route {
        let n = self.fanout(src, dst);
        self.route_indexed(src, dst, ecmp::index(key, n))
    }

    /// Number of equal-cost routes between two hosts.
    fn fanout(&self, src: HostId, dst: HostId) -> usize {
        assert_ne!(src, dst, "loopback route");
        match &self.routing {
            Routing::Star => 1,
            Routing::LeafSpine {
                hosts_per_leaf,
                spines,
                ..
            } => {
                if src.0 / hosts_per_leaf == dst.0 / hosts_per_leaf {
                    1
                } else {
                    *spines as usize
                }
            }
            Routing::FatTree { k, .. } => {
                let half = k / 2;
                let per_pod = half * half;
                let (ps, es) = (src.0 / per_pod, (src.0 % per_pod) / half);
                let (pd, ed) = (dst.0 / per_pod, (dst.0 % per_pod) / half);
                if ps == pd && es == ed {
                    1
                } else if ps == pd {
                    half as usize
                } else {
                    (half * half) as usize
                }
            }
        }
    }

    /// The `idx`-th route of the canonical equal-cost set (`idx` must be
    /// `< fanout(src, dst)`).
    fn route_indexed(&self, src: HostId, dst: HostId, idx: usize) -> Route {
        let up = self.host_uplink(src);
        let down = self.host_downlink(dst);
        match &self.routing {
            Routing::Star => Route::of(&[up, down]),
            Routing::LeafSpine {
                hosts_per_leaf,
                spines,
                leaf_up,
                spine_down,
            } => {
                let ls = src.0 / hosts_per_leaf;
                let ld = dst.0 / hosts_per_leaf;
                if ls == ld {
                    return Route::of(&[up, down]);
                }
                let s = idx as u32;
                let leaves = self.num_hosts() / hosts_per_leaf;
                Route::of(&[
                    up,
                    leaf_up[(ls * spines + s) as usize],
                    spine_down[(s * leaves + ld) as usize],
                    down,
                ])
            }
            Routing::FatTree {
                k,
                edge_up,
                agg_down,
                agg_up,
                core_down,
            } => {
                let half = k / 2;
                let per_pod = half * half;
                let (ps, es) = (src.0 / per_pod, (src.0 % per_pod) / half);
                let (pd, ed) = (dst.0 / per_pod, (dst.0 % per_pod) / half);
                if ps == pd && es == ed {
                    return Route::of(&[up, down]);
                }
                if ps == pd {
                    let a = idx as u32;
                    return Route::of(&[
                        up,
                        edge_up[((ps * half + es) * half + a) as usize],
                        agg_down[((ps * half + a) * half + ed) as usize],
                        down,
                    ]);
                }
                let (a, j) = (idx as u32 / half, idx as u32 % half);
                Route::of(&[
                    up,
                    edge_up[((ps * half + es) * half + a) as usize],
                    agg_up[((ps * half + a) * half + j) as usize],
                    core_down[((a * half + j) * (*k) + pd) as usize],
                    agg_down[((pd * half + a) * half + ed) as usize],
                    down,
                ])
            }
        }
    }

    /// Every equal-cost route between two hosts, in canonical
    /// (lexicographic) order. `route` always returns a member of this
    /// set. Intended for tests, defense sweeps and fabric inspection —
    /// the hot path uses [`Topology::route`].
    ///
    /// # Panics
    ///
    /// Same contract as [`Topology::route`].
    pub fn equal_cost_routes(&self, src: HostId, dst: HostId) -> Vec<Route> {
        (0..self.fanout(src, dst))
            .map(|i| self.route_indexed(src, dst, i))
            .collect()
    }

    /// A one-line human summary of the fabric.
    pub fn describe(&self) -> String {
        format!(
            "{} ({} hosts, {} switches, {} directed links, {:.1}:1 oversubscription)",
            self.spec.canonical(),
            self.num_hosts(),
            self.num_switches(),
            self.links.len(),
            self.spec.oversubscription(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TopologySpec;

    fn connected(t: &Topology, r: &Route, src: HostId, dst: HostId) {
        assert!(!r.is_empty());
        let first = t.link(r.links()[0]);
        assert_eq!(first.src, NodeId::Host(src.0));
        let last = t.link(*r.links().last().expect("non-empty"));
        assert_eq!(last.dst, NodeId::Host(dst.0));
        for w in r.links().windows(2) {
            assert_eq!(
                t.link(w[0]).dst,
                t.link(w[1]).src,
                "hops must chain through shared nodes"
            );
        }
    }

    #[test]
    fn star_routes_are_two_hops() {
        let t = Topology::from_spec("p2p:hosts=4").expect("build");
        assert_eq!(t.num_hosts(), 4);
        assert_eq!(t.num_switches(), 1);
        for s in 0..4u32 {
            for d in 0..4u32 {
                if s == d {
                    continue;
                }
                let r = t.route(
                    HostId(s),
                    HostId(d),
                    FlowKey::new(HostId(s), HostId(d), 1, 2),
                );
                assert_eq!(r.len(), 2);
                connected(&t, &r, HostId(s), HostId(d));
                assert_eq!(t.equal_cost_routes(HostId(s), HostId(d)).len(), 1);
            }
        }
    }

    #[test]
    fn leaf_spine_structure_and_routes() {
        let t = Topology::from_spec("leaf-spine:hosts=16,leaves=4,spines=2").expect("build");
        assert_eq!(t.num_hosts(), 16);
        assert_eq!(t.num_switches(), 6);
        // 16 host cables + 4*2 trunks, both directions.
        assert_eq!(t.links().len(), 16 * 2 + 8 * 2);
        // Same leaf: two hops, one path.
        let r = t.route(
            HostId(0),
            HostId(1),
            FlowKey::new(HostId(0), HostId(1), 1, 2),
        );
        assert_eq!(r.len(), 2);
        connected(&t, &r, HostId(0), HostId(1));
        // Cross leaf: four hops, |spines| equal-cost paths.
        let ec = t.equal_cost_routes(HostId(0), HostId(5));
        assert_eq!(ec.len(), 2);
        for r in &ec {
            assert_eq!(r.len(), 4);
            connected(&t, r, HostId(0), HostId(5));
        }
        let chosen = t.route(
            HostId(0),
            HostId(5),
            FlowKey::new(HostId(0), HostId(5), 3, 4),
        );
        assert!(ec.contains(&chosen));
    }

    #[test]
    fn fat_tree_structure_and_routes() {
        let t = Topology::from_spec("fat-tree:k=4").expect("build");
        assert_eq!(t.num_hosts(), 16);
        // 4 pods * 4 switches + 4 cores.
        assert_eq!(t.num_switches(), 20);
        // Same edge: 2 hops.
        let r = t.route(
            HostId(0),
            HostId(1),
            FlowKey::new(HostId(0), HostId(1), 1, 2),
        );
        assert_eq!(r.len(), 2);
        // Same pod, cross edge: 4 hops, k/2 paths.
        let ec = t.equal_cost_routes(HostId(0), HostId(2));
        assert_eq!(ec.len(), 2);
        for r in &ec {
            assert_eq!(r.len(), 4);
            connected(&t, r, HostId(0), HostId(2));
        }
        // Cross pod: 6 hops, (k/2)^2 paths.
        let ec = t.equal_cost_routes(HostId(0), HostId(15));
        assert_eq!(ec.len(), 4);
        for r in &ec {
            assert_eq!(r.len(), 6);
            connected(&t, r, HostId(0), HostId(15));
        }
        // Every chosen route is drawn from the equal-cost set.
        for qp in 0..16u32 {
            let chosen = t.route(
                HostId(0),
                HostId(15),
                FlowKey::new(HostId(0), HostId(15), qp, qp + 1),
            );
            assert!(ec.contains(&chosen));
        }
    }

    #[test]
    fn canonical_route_order_is_sorted() {
        for spec in ["leaf-spine:hosts=16,leaves=4,spines=4", "fat-tree:k=4"] {
            let t = Topology::from_spec(spec).expect("build");
            let ec = t.equal_cost_routes(HostId(0), HostId(t.num_hosts() - 1));
            let mut sorted = ec.clone();
            sorted.sort_unstable();
            assert_eq!(ec, sorted, "{spec}: enumeration must be canonical");
        }
    }

    #[test]
    fn describe_mentions_scale() {
        let t = Topology::build(
            &TopologySpec::parse("leaf-spine:hosts=256,leaves=8,spines=4").expect("parse"),
        );
        let d = t.describe();
        assert!(d.contains("256 hosts"), "{d}");
        assert!(d.contains("8.0:1"), "{d}");
    }
}
