//! Deterministic ECMP flow hashing.
//!
//! Real switches pick one of several equal-cost next hops by hashing
//! immutable header fields, so every packet of a flow takes the same
//! path while distinct flows spread across the fabric. This module
//! reproduces that with a fixed (seed-free) 64-bit mix over the flow
//! four-tuple, which gives the simulator three properties the scenario
//! suite leans on:
//!
//! * **Thread-count determinism** — selection is a pure function of the
//!   tuple; no RNG stream, no iteration order, no clock.
//! * **Permutation stability** — [`select`] canonically sorts the
//!   candidate set before indexing, so the chosen route does not depend
//!   on the order paths were enumerated in.
//! * **Non-degenerate spread** — the finalizer avalanches, so tenant
//!   populations with distinct QPs cover all uplinks (property-tested).

use crate::fabric::Route;
use rnic_model::HostId;

/// The immutable per-flow fields ECMP hashes over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Source host.
    pub src: u32,
    /// Destination host.
    pub dst: u32,
    /// Source queue-pair number.
    pub src_qp: u32,
    /// Destination queue-pair number.
    pub dst_qp: u32,
}

impl FlowKey {
    /// Builds the key for one flow.
    pub fn new(src: HostId, dst: HostId, src_qp: u32, dst_qp: u32) -> FlowKey {
        FlowKey {
            src: src.0,
            dst: dst.0,
            src_qp,
            dst_qp,
        }
    }

    /// The 64-bit flow hash (splitmix64 finalizer over the packed
    /// tuple). Fixed for all time: digests pin on it.
    pub fn hash(self) -> u64 {
        let mut x = (u64::from(self.src) << 32) | u64::from(self.dst);
        x = mix(x);
        x ^= (u64::from(self.src_qp) << 32) | u64::from(self.dst_qp);
        mix(x)
    }
}

/// splitmix64 finalizer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The equal-cost index a flow maps to among `n` candidates.
///
/// # Panics
///
/// Panics when `n == 0` — an empty candidate set means the fabric has
/// no path at all, which is a construction bug.
pub fn index(key: FlowKey, n: usize) -> usize {
    assert!(n > 0, "empty equal-cost set");
    (key.hash() % n as u64) as usize
}

/// Picks the flow's route from an equal-cost candidate set.
///
/// The slice is sorted canonically first, so the result is invariant
/// under any permutation of `candidates` — enumeration order (and hence
/// host-id relabeling of the control plane that produced it) cannot
/// leak into packet paths.
///
/// # Panics
///
/// Panics on an empty candidate set.
pub fn select(key: FlowKey, candidates: &mut [Route]) -> Route {
    candidates.sort_unstable();
    candidates[index(key, candidates.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(a: u32, b: u32, qa: u32, qb: u32) -> FlowKey {
        FlowKey::new(HostId(a), HostId(b), qa, qb)
    }

    #[test]
    fn hash_is_stable() {
        // Pinned: a change here silently re-routes every multi-path
        // flow and invalidates scenario digests.
        assert_eq!(key(0, 1, 7, 9).hash(), key(0, 1, 7, 9).hash());
        let h = key(3, 5, 17, 23).hash();
        assert_eq!(h, key(3, 5, 17, 23).hash());
        assert_ne!(key(0, 1, 7, 9).hash(), key(1, 0, 9, 7).hash());
    }

    #[test]
    fn qp_changes_move_the_flow() {
        let hits: std::collections::HashSet<usize> =
            (0..64).map(|qp| index(key(0, 1, qp, qp + 1), 4)).collect();
        assert!(hits.len() > 1, "64 flows all hashed to one uplink");
    }

    #[test]
    #[should_panic(expected = "empty equal-cost set")]
    fn empty_set_panics() {
        index(key(0, 1, 1, 2), 0);
    }
}
