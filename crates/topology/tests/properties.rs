//! Property tests for ECMP selection (the determinism contract the
//! scenario digests rest on): pure-function determinism, permutation
//! stability of the equal-cost set, and non-degenerate spread across
//! uplinks.

use proptest::prelude::*;
use ragnar_topology::{ecmp, FlowKey, Topology};
use rnic_model::HostId;
use sim_core::SimRng;
use std::collections::HashSet;

fn fabrics() -> Vec<Topology> {
    [
        "leaf-spine:hosts=16,leaves=4,spines=2",
        "leaf-spine:hosts=256,leaves=8,spines=4",
        "fat-tree:k=4",
    ]
    .iter()
    .map(|s| Topology::from_spec(s).expect("build"))
    .collect()
}

proptest! {
    /// Selection is a pure function of the flow tuple: recomputing it —
    /// including via the allocating enumerate-then-select path a
    /// different thread might take — always lands on the same route.
    #[test]
    fn selection_is_deterministic(
        src in 0u32..16, dst in 0u32..16, src_qp in 0u32..1024, dst_qp in 0u32..1024
    ) {
        for topo in fabrics() {
            let (src, dst) = (src % topo.num_hosts(), dst % topo.num_hosts());
            if src == dst { continue; }
            let key = FlowKey::new(HostId(src), HostId(dst), src_qp, dst_qp);
            let direct = topo.route(HostId(src), HostId(dst), key);
            prop_assert_eq!(direct, topo.route(HostId(src), HostId(dst), key));
            let mut candidates = topo.equal_cost_routes(HostId(src), HostId(dst));
            prop_assert_eq!(direct, ecmp::select(key, &mut candidates),
                "direct O(1) routing must agree with enumerate-then-select");
            prop_assert!(candidates.contains(&direct));
        }
    }

    /// Shuffling the equal-cost candidate set (as a host-id relabeling
    /// of the control plane would) never changes the selected route.
    #[test]
    fn selection_is_permutation_stable(
        src_qp in 0u32..4096, dst_qp in 0u32..4096, shuffle_seed in 0u64..1_000
    ) {
        for topo in fabrics() {
            let (src, dst) = (HostId(0), HostId(topo.num_hosts() - 1));
            let key = FlowKey::new(src, dst, src_qp, dst_qp);
            let mut canonical = topo.equal_cost_routes(src, dst);
            let mut shuffled = canonical.clone();
            SimRng::seed_from(shuffle_seed).shuffle(&mut shuffled);
            prop_assert_eq!(
                ecmp::select(key, &mut canonical),
                ecmp::select(key, &mut shuffled),
                "candidate order leaked into path selection"
            );
        }
    }

    /// The hash spreads: a modest population of flows between two fixed
    /// hosts touches every equal-cost uplink (no degenerate funnelling
    /// onto one spine).
    #[test]
    fn selection_spreads_over_uplinks(qp_base in 0u32..100_000) {
        for topo in fabrics() {
            let (src, dst) = (HostId(0), HostId(topo.num_hosts() - 1));
            let n_paths = topo.equal_cost_routes(src, dst).len();
            let chosen: HashSet<_> = (0..64)
                .map(|i| topo.route(src, dst, FlowKey::new(src, dst, qp_base + i, qp_base + i + 1)))
                .collect();
            prop_assert_eq!(chosen.len(), n_paths,
                "64 flows covered {} of {} equal-cost paths", chosen.len(), n_paths);
        }
    }
}
