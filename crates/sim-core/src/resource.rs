//! Queueing primitives for modelling contended hardware resources.
//!
//! Every shared unit in the RNIC model — a PCIe direction, the wire, a
//! processing-unit issue port, a translation-table bank — is modelled as a
//! *server* that can process one job at a time. Reserving a slot returns
//! when the job starts and ends; the gap between "now" and the start is the
//! queueing delay an observer measures, which is exactly the contention
//! signal the Ragnar attacks exploit.

use crate::time::{SimDuration, SimTime};

/// A single-server FIFO resource.
///
/// # Examples
///
/// ```
/// use sim_core::{ServiceResource, SimTime, SimDuration};
///
/// let mut port = ServiceResource::new();
/// let a = port.reserve(SimTime::ZERO, SimDuration::from_nanos(10));
/// let b = port.reserve(SimTime::ZERO, SimDuration::from_nanos(10));
/// assert_eq!(a.start, SimTime::ZERO);
/// assert_eq!(b.start, SimTime::from_nanos(10)); // queued behind `a`
/// ```
#[derive(Debug, Clone, Default)]
pub struct ServiceResource {
    next_free: SimTime,
    busy: SimDuration,
    jobs: u64,
}

/// The outcome of reserving a service slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// When the job begins service (≥ the requested time).
    pub start: SimTime,
    /// When the job completes service.
    pub end: SimTime,
}

impl Reservation {
    /// Queueing delay experienced before service started.
    pub fn wait_since(&self, requested: SimTime) -> SimDuration {
        self.start.saturating_since(requested)
    }
}

impl ServiceResource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the next available service slot of length `service` at or
    /// after `now`, FIFO behind earlier reservations.
    pub fn reserve(&mut self, now: SimTime, service: SimDuration) -> Reservation {
        let start = now.max_of(self.next_free);
        let end = start + service;
        self.next_free = end;
        self.busy += service;
        self.jobs += 1;
        Reservation { start, end }
    }

    /// When the resource next becomes idle.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Backlog still queued at `now` (zero when idle).
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.next_free.saturating_since(now)
    }

    /// Total service time accumulated.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Number of jobs served.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Fraction of `[0, now]` spent busy (1.0 when saturated). Returns 0 at
    /// time zero.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        (self.busy.as_picos() as f64 / now.as_picos() as f64).min(1.0)
    }

    /// Resets the accumulated busy-time/job statistics without releasing
    /// the current backlog (used by windowed counters).
    pub fn reset_stats(&mut self) {
        self.busy = SimDuration::ZERO;
        self.jobs = 0;
    }
}

/// A bank-parallel resource: `n` identical servers, jobs are steered to an
/// explicit bank (e.g. by address bits). Same-bank jobs serialize; jobs to
/// different banks proceed in parallel. This is the mechanism behind the
/// Grain-IV offset effect.
#[derive(Debug, Clone)]
pub struct BankedResource {
    banks: Vec<ServiceResource>,
}

impl BankedResource {
    /// Creates `n` idle banks.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a banked resource needs at least one bank");
        BankedResource {
            banks: vec![ServiceResource::new(); n],
        }
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Reserves a slot on the bank with the given index (modulo the bank
    /// count, so callers can pass raw address bits).
    pub fn reserve(&mut self, bank: usize, now: SimTime, service: SimDuration) -> Reservation {
        let n = self.banks.len();
        self.banks[bank % n].reserve(now, service)
    }

    /// Backlog of the addressed bank.
    pub fn backlog(&self, bank: usize, now: SimTime) -> SimDuration {
        let n = self.banks.len();
        self.banks[bank % n].backlog(now)
    }

    /// Total jobs across all banks.
    pub fn jobs(&self) -> u64 {
        self.banks.iter().map(ServiceResource::jobs).sum()
    }
}

/// A link direction with a fixed bit rate: reserving transmission of a
/// frame serializes behind earlier frames, like an egress queue.
#[derive(Debug, Clone)]
pub struct LinkResource {
    rate_bps: u64,
    port: ServiceResource,
    bytes: u64,
    frames: u64,
}

impl LinkResource {
    /// Creates an idle link direction at `rate_bps` bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate_bps` is zero.
    pub fn new(rate_bps: u64) -> Self {
        assert!(rate_bps > 0, "link rate must be positive");
        LinkResource {
            rate_bps,
            port: ServiceResource::new(),
            bytes: 0,
            frames: 0,
        }
    }

    /// Configured bit rate.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// Queues a frame of `bytes` for transmission at or after `now`;
    /// returns when serialization starts and finishes.
    pub fn transmit(&mut self, now: SimTime, bytes: u64) -> Reservation {
        let ser = SimDuration::serialization(bytes, self.rate_bps);
        self.bytes += bytes;
        self.frames += 1;
        self.port.reserve(now, ser)
    }

    /// Egress backlog at `now`.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.port.backlog(now)
    }

    /// Total bytes accepted.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes
    }

    /// Total frames accepted.
    pub fn frames_sent(&self) -> u64 {
        self.frames
    }

    /// Fraction of `[0, now]` spent transmitting.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.port.utilization(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_serialization() {
        let mut r = ServiceResource::new();
        let t0 = SimTime::from_nanos(100);
        let a = r.reserve(t0, SimDuration::from_nanos(5));
        let b = r.reserve(t0, SimDuration::from_nanos(5));
        let c = r.reserve(t0, SimDuration::from_nanos(5));
        assert_eq!(a.start, t0);
        assert_eq!(b.start, t0 + SimDuration::from_nanos(5));
        assert_eq!(c.start, t0 + SimDuration::from_nanos(10));
        assert_eq!(c.wait_since(t0), SimDuration::from_nanos(10));
    }

    #[test]
    fn idle_gap_not_counted_busy() {
        let mut r = ServiceResource::new();
        r.reserve(SimTime::from_nanos(0), SimDuration::from_nanos(10));
        // Arrives after the resource went idle at t=10.
        let b = r.reserve(SimTime::from_nanos(50), SimDuration::from_nanos(10));
        assert_eq!(b.start, SimTime::from_nanos(50));
        assert_eq!(r.busy_time(), SimDuration::from_nanos(20));
        assert_eq!(r.jobs(), 2);
        let u = r.utilization(SimTime::from_nanos(100));
        assert!((u - 0.2).abs() < 1e-9);
    }

    #[test]
    fn banked_parallelism() {
        let mut b = BankedResource::new(4);
        let t = SimTime::ZERO;
        let d = SimDuration::from_nanos(10);
        // Different banks run in parallel.
        assert_eq!(b.reserve(0, t, d).start, t);
        assert_eq!(b.reserve(1, t, d).start, t);
        // Same bank serializes; index wraps modulo bank count.
        assert_eq!(b.reserve(4, t, d).start, t + d);
        assert_eq!(b.jobs(), 3);
    }

    #[test]
    fn link_backlog_and_counters() {
        let mut l = LinkResource::new(8_000_000_000_000); // 1 B/ps
        let t = SimTime::ZERO;
        l.transmit(t, 1000);
        let r = l.transmit(t, 1000);
        assert_eq!(r.start, SimTime::from_picos(1000));
        assert_eq!(l.bytes_sent(), 2000);
        assert_eq!(l.frames_sent(), 2);
        assert_eq!(l.backlog(t), SimDuration::from_picos(2000));
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_panics() {
        let _ = BankedResource::new(0);
    }
}
