//! Process-wide panic supervision gate.
//!
//! Several layers of the stack run work they expect may panic and
//! recover from it deliberately: the harness executor isolates each
//! sweep cell behind `catch_unwind`, and the `pdes` worker pool catches
//! worker panics so the coordinator can quarantine the worker and
//! replay the poisoned window. For those *supervised* sections the
//! default panic hook's backtrace spew is pure noise — but silencing
//! the hook globally (what the executor used to do) also swallows
//! panics from threads nobody is supervising: a telemetry flush, a
//! stray detached thread, a bug in the scheduler itself.
//!
//! This module scopes the suppression to exactly the threads that asked
//! for it. [`install_panic_gate`] installs one process-wide hook (once,
//! idempotently) that delegates to the previously-installed hook unless
//! the *current thread* is inside a [`supervised_section`] guard. Every
//! supervised runner enters the guard around the `catch_unwind` it owns;
//! every other thread keeps the default loud behavior.

use std::cell::Cell;
use std::panic;
use std::sync::Once;

thread_local! {
    /// Depth of nested supervised sections on this thread.
    static SUPERVISED_DEPTH: Cell<u32> = const { Cell::new(0) };
}

static GATE: Once = Once::new();

/// Installs the gate hook (first call only; later calls are no-ops).
///
/// The hook captured at install time — normally the default hook, with
/// its message and backtrace — keeps handling panics on unsupervised
/// threads; supervised sections are silent because their supervisor
/// reports the failure itself, with better context.
pub fn install_panic_gate() {
    GATE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !thread_is_supervised() {
                prev(info);
            }
        }));
    });
}

/// Whether the current thread is inside a [`supervised_section`].
pub fn thread_is_supervised() -> bool {
    SUPERVISED_DEPTH.with(|d| d.get() > 0)
}

/// RAII guard marking the current thread as supervised; see
/// [`supervised_section`].
pub struct SupervisedGuard {
    _private: (),
}

impl Drop for SupervisedGuard {
    fn drop(&mut self) {
        SUPERVISED_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Marks the current thread as supervised until the returned guard
/// drops, and makes sure the gate hook is installed. Panics raised
/// while the guard is live skip the default hook — the caller is
/// expected to `catch_unwind` and report them with context.
pub fn supervised_section() -> SupervisedGuard {
    install_panic_gate();
    SUPERVISED_DEPTH.with(|d| d.set(d.get() + 1));
    SupervisedGuard { _private: () }
}

/// Renders a caught panic payload as a message string (the common
/// `&str` / `String` payloads verbatim, anything else a placeholder).
pub fn panic_payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn guard_nests_and_restores() {
        assert!(!thread_is_supervised());
        {
            let _a = supervised_section();
            assert!(thread_is_supervised());
            {
                let _b = supervised_section();
                assert!(thread_is_supervised());
            }
            assert!(thread_is_supervised());
        }
        assert!(!thread_is_supervised());
    }

    #[test]
    fn supervised_panics_are_catchable_and_named() {
        let _guard = supervised_section();
        let err = catch_unwind(AssertUnwindSafe(|| panic!("boom {}", 7))).unwrap_err();
        assert_eq!(panic_payload_message(err.as_ref()), "boom 7");
        let err = catch_unwind(AssertUnwindSafe(|| panic!("static"))).unwrap_err();
        assert_eq!(panic_payload_message(err.as_ref()), "static");
    }

    #[test]
    fn other_threads_stay_unsupervised() {
        let _guard = supervised_section();
        let other = std::thread::spawn(thread_is_supervised)
            .join()
            .expect("probe thread");
        assert!(!other, "supervision must not leak across threads");
    }
}
