//! Online invariant-monitor configuration.
//!
//! The simulator's invariants — arena allocation ledgers, fabric packet
//! conservation, time monotonicity, QP-state legality — were historically
//! checked post-hoc by tests. At cluster scale an hours-long sweep wants
//! them checked *during* the run, so a conservation bug surfaces at the
//! window it happens in, not after the run has burned its budget.
//!
//! This module holds only the domain-agnostic configuration surface: the
//! [`ViolationPolicy`], the [`MonitorConfig`] knob set, and the ambient
//! process-wide installation the harness `--monitors` flag drives (the
//! same pattern as `pdes::set_ambient_workers`). The monitors themselves
//! live with the state they watch (`rdma-verbs::monitors`); violation
//! *raising* is also done there, where telemetry is in scope.
//!
//! Monitoring is observational: it never changes artifacts or cache keys
//! (a violation under `FailCell`/`AbortRun` fails the run loudly rather
//! than producing a different artifact).

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// What happens when an online monitor detects an invariant violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationPolicy {
    /// Log the violation (telemetry warning + counter) and continue.
    Log,
    /// Fail the current cell: the monitor panics with a `[monitor]`
    /// message; the harness executor records the cell as failed and the
    /// sweep continues.
    FailCell,
    /// Abort the whole sweep: the monitor panics with a
    /// `[monitor-abort]` message; the executor stops scheduling cells
    /// and salvages what already completed.
    AbortRun,
}

impl ViolationPolicy {
    /// Parses the `--monitors` CLI spelling.
    pub fn parse(s: &str) -> Result<ViolationPolicy, String> {
        match s {
            "log" => Ok(ViolationPolicy::Log),
            "fail-cell" => Ok(ViolationPolicy::FailCell),
            "abort-run" => Ok(ViolationPolicy::AbortRun),
            other => Err(format!(
                "unknown violation policy '{other}' (expected log, fail-cell, or abort-run)"
            )),
        }
    }

    /// The canonical CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            ViolationPolicy::Log => "log",
            ViolationPolicy::FailCell => "fail-cell",
            ViolationPolicy::AbortRun => "abort-run",
        }
    }
}

/// Configuration for the online invariant monitors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorConfig {
    /// What a detected violation does to the run.
    pub policy: ViolationPolicy,
    /// Evaluate the (non-trivial) invariants every this many processed
    /// events; cheap per-event checks (time monotonicity) always run.
    pub every_events: u64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            policy: ViolationPolicy::Log,
            every_events: 1024,
        }
    }
}

// Ambient encoding: 0 = off, 1..=3 = policy discriminant + 1.
static AMBIENT_POLICY: AtomicU8 = AtomicU8::new(0);
static AMBIENT_CADENCE: AtomicU64 = AtomicU64::new(1024);

/// Installs (or clears, with `None`) the process-wide monitor config
/// that newly-constructed simulations pick up. The harness sets this
/// from `--monitors <policy>` before dispatching cells; like
/// `--threads`/`--workers` it never reaches configs or cache keys.
pub fn set_ambient_monitors(cfg: Option<MonitorConfig>) {
    match cfg {
        None => AMBIENT_POLICY.store(0, Ordering::Relaxed),
        Some(c) => {
            AMBIENT_CADENCE.store(c.every_events.max(1), Ordering::Relaxed);
            let tag = match c.policy {
                ViolationPolicy::Log => 1,
                ViolationPolicy::FailCell => 2,
                ViolationPolicy::AbortRun => 3,
            };
            AMBIENT_POLICY.store(tag, Ordering::Relaxed);
        }
    }
}

/// The currently-installed ambient monitor config, if any.
pub fn ambient_monitors() -> Option<MonitorConfig> {
    let policy = match AMBIENT_POLICY.load(Ordering::Relaxed) {
        1 => ViolationPolicy::Log,
        2 => ViolationPolicy::FailCell,
        3 => ViolationPolicy::AbortRun,
        _ => return None,
    };
    Some(MonitorConfig {
        policy,
        every_events: AMBIENT_CADENCE.load(Ordering::Relaxed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parse_roundtrip() {
        for p in [
            ViolationPolicy::Log,
            ViolationPolicy::FailCell,
            ViolationPolicy::AbortRun,
        ] {
            assert_eq!(ViolationPolicy::parse(p.as_str()), Ok(p));
        }
        assert!(ViolationPolicy::parse("explode").is_err());
    }

    #[test]
    fn ambient_install_roundtrip() {
        // Serialized within this test; other tests don't touch the
        // ambient monitor state.
        set_ambient_monitors(Some(MonitorConfig {
            policy: ViolationPolicy::FailCell,
            every_events: 64,
        }));
        let got = ambient_monitors().expect("installed");
        assert_eq!(got.policy, ViolationPolicy::FailCell);
        assert_eq!(got.every_events, 64);
        set_ambient_monitors(None);
        assert_eq!(ambient_monitors(), None);
    }
}
