//! # sim-core — deterministic discrete-event simulation engine
//!
//! The foundation of the Ragnar reproduction: a picosecond-resolution
//! simulation clock ([`SimTime`], [`SimDuration`]), a deterministic
//! future-event list (the [`EventSchedule`] trait with two backends —
//! the hot-path hierarchical [`CalendarQueue`] and the heap-based
//! [`ReferenceQueue`] ordering oracle; [`EventQueue`] aliases the
//! default backend), seeded randomness ([`SimRng`]),
//! queueing primitives for contended hardware resources
//! ([`ServiceResource`], [`BankedResource`], [`LinkResource`]), and the
//! statistics used by the paper's measurement methodology
//! ([`OnlineStats`], [`Summary`], [`pearson`], [`linear_fit`],
//! [`TimeSeries`]).
//!
//! Both queue backends guarantee the same total event order — earliest
//! timestamp first, FIFO among equal timestamps — which is what makes
//! every experiment bit-reproducible from its seed regardless of
//! backend or thread count (see `tests/differential.rs`).
//!
//! Everything in this crate is intentionally domain-agnostic: the RNIC
//! microarchitecture lives in `rnic-model`, and the verbs software stack in
//! `rdma-verbs`.
//!
//! # Examples
//!
//! Simulate two jobs contending for one server and measure the queueing
//! delay of the second — the primitive behind every volatile channel in
//! the paper:
//!
//! ```
//! use sim_core::{ServiceResource, SimDuration, SimTime};
//!
//! let mut unit = ServiceResource::new();
//! let now = SimTime::ZERO;
//! let first = unit.reserve(now, SimDuration::from_nanos(300));
//! let second = unit.reserve(now, SimDuration::from_nanos(300));
//! assert_eq!(first.wait_since(now), SimDuration::ZERO);
//! assert_eq!(second.wait_since(now), SimDuration::from_nanos(300));
//! ```

#![warn(missing_docs)]

mod calendar;
mod fxmap;
mod monitor;
mod queue;
mod resource;
mod rng;
mod stats;
mod supervise;
mod time;

pub use calendar::CalendarQueue;
pub use fxmap::{FxHashMap, FxHashSet, FxHasher};
pub use monitor::{ambient_monitors, set_ambient_monitors, MonitorConfig, ViolationPolicy};
pub use queue::{EventHandle, EventSchedule, ReferenceQueue};
pub use supervise::{
    install_panic_gate, panic_payload_message, supervised_section, thread_is_supervised,
    SupervisedGuard,
};

/// The default event-queue backend used by the simulation hot path.
///
/// Aliases [`CalendarQueue`]; [`ReferenceQueue`] remains available as
/// the ordering oracle for differential tests and A/B benchmarks.
pub type EventQueue<E> = CalendarQueue<E>;

/// Version of the event-core engine, threaded into harness cache keys.
///
/// Bump this whenever a change to the engine could alter event ordering
/// or artifact bytes (it shouldn't — that is what the differential and
/// golden tests pin — but cached results from before the change must
/// still be treated as misses). History: 1 = global `BinaryHeap` event
/// queue, 2 = hierarchical calendar queue.
pub const ENGINE_VERSION: u32 = 2;
pub use resource::{BankedResource, LinkResource, Reservation, ServiceResource};
pub use rng::{derive_seed, SimRng};
pub use stats::{
    linear_fit, pearson, percentile_sorted, LineFit, OnlineStats, Summary, TimeSeries,
};
pub use time::{SimDuration, SimTime};
