//! # sim-core — deterministic discrete-event simulation engine
//!
//! The foundation of the Ragnar reproduction: a picosecond-resolution
//! simulation clock ([`SimTime`], [`SimDuration`]), a deterministic
//! future-event list ([`EventQueue`]), seeded randomness ([`SimRng`]),
//! queueing primitives for contended hardware resources
//! ([`ServiceResource`], [`BankedResource`], [`LinkResource`]), and the
//! statistics used by the paper's measurement methodology
//! ([`OnlineStats`], [`Summary`], [`pearson`], [`linear_fit`],
//! [`TimeSeries`]).
//!
//! Everything in this crate is intentionally domain-agnostic: the RNIC
//! microarchitecture lives in `rnic-model`, and the verbs software stack in
//! `rdma-verbs`.
//!
//! # Examples
//!
//! Simulate two jobs contending for one server and measure the queueing
//! delay of the second — the primitive behind every volatile channel in
//! the paper:
//!
//! ```
//! use sim_core::{ServiceResource, SimDuration, SimTime};
//!
//! let mut unit = ServiceResource::new();
//! let now = SimTime::ZERO;
//! let first = unit.reserve(now, SimDuration::from_nanos(300));
//! let second = unit.reserve(now, SimDuration::from_nanos(300));
//! assert_eq!(first.wait_since(now), SimDuration::ZERO);
//! assert_eq!(second.wait_since(now), SimDuration::from_nanos(300));
//! ```

#![warn(missing_docs)]

mod queue;
mod resource;
mod rng;
mod stats;
mod time;

pub use queue::EventQueue;
pub use resource::{BankedResource, LinkResource, Reservation, ServiceResource};
pub use rng::{derive_seed, SimRng};
pub use stats::{
    linear_fit, pearson, percentile_sorted, LineFit, OnlineStats, Summary, TimeSeries,
};
pub use time::{SimDuration, SimTime};
