//! Simulation clock types.
//!
//! All simulated time is expressed in integer **picoseconds** so that the
//! serialization time of a single 64 B frame on a 200 Gbps link (2.56 ns)
//! is still resolved exactly and arithmetic stays deterministic across
//! platforms. A `u64` picosecond counter wraps after ~213 days of simulated
//! time, far beyond any experiment in this repository.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in picoseconds since the
/// start of the simulation.
///
/// # Examples
///
/// ```
/// use sim_core::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_nanos(5);
/// assert_eq!(t.as_picos(), 5_000);
/// ```
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in picoseconds.
///
/// # Examples
///
/// ```
/// use sim_core::SimDuration;
///
/// let d = SimDuration::from_micros(2) + SimDuration::from_nanos(500);
/// assert_eq!(d.as_nanos_f64(), 2_500.0);
/// ```
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw picoseconds.
    pub const fn from_picos(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates an instant from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Creates an instant from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000_000)
    }

    /// Raw picosecond count since simulation start.
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) nanoseconds.
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This instant expressed in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max_of(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw picoseconds.
    pub const fn from_picos(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a span from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000_000)
    }

    /// Creates a span from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000_000)
    }

    /// Creates a span from fractional nanoseconds, rounding to the nearest
    /// picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    pub fn from_nanos_f64(ns: f64) -> Self {
        assert!(
            ns.is_finite() && ns >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((ns * 1e3).round() as u64)
    }

    /// Raw picosecond count.
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// This span expressed in (fractional) nanoseconds.
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This span expressed in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This span expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// True if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The time it takes to serialize `bytes` at `rate_bps` bits per second,
    /// rounded up to a whole picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `rate_bps` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use sim_core::SimDuration;
    ///
    /// // 64 B at 200 Gbps = 2.56 ns.
    /// let d = SimDuration::serialization(64, 200_000_000_000);
    /// assert_eq!(d.as_picos(), 2_560);
    /// ```
    pub fn serialization(bytes: u64, rate_bps: u64) -> Self {
        assert!(rate_bps > 0, "link rate must be positive");
        // bits * 1e12 / rate, computed in u128 to avoid overflow.
        let ps = (bytes as u128 * 8 * 1_000_000_000_000).div_ceil(rate_bps as u128);
        SimDuration(ps as u64)
    }

    /// Multiplies the span by a non-negative float factor, rounding to the
    /// nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "factor must be finite and non-negative"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ps", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}ns", self.as_nanos_f64())
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{:.6}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_nanos(3).as_picos(), 3_000);
        assert_eq!(SimTime::from_micros(3).as_picos(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_picos(), 3_000_000_000);
        assert_eq!(SimTime::from_secs(3).as_picos(), 3_000_000_000_000);
        assert_eq!(SimDuration::from_nanos(7).as_nanos_f64(), 7.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(40);
        assert_eq!((t + d).as_picos(), 140_000);
        assert_eq!((t + d) - t, d);
        assert_eq!((t - d).as_picos(), 60_000);
        assert_eq!((d * 3).as_picos(), 120_000);
        assert_eq!((d / 4).as_picos(), 10_000);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(b.saturating_since(a), SimDuration::from_nanos(10));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn serialization_time_exact() {
        // 64 B at 200 Gbps = 2.56 ns
        assert_eq!(
            SimDuration::serialization(64, 200_000_000_000).as_picos(),
            2_560
        );
        // 1500 B at 25 Gbps = 480 ns
        assert_eq!(
            SimDuration::serialization(1500, 25_000_000_000).as_picos(),
            480_000
        );
        // Rounds up: 1 B at 3 bps.
        let d = SimDuration::serialization(1, 3);
        assert_eq!(
            d.as_picos(),
            (8u128 * 1_000_000_000_000u128).div_ceil(3) as u64
        );
    }

    #[test]
    #[should_panic(expected = "link rate must be positive")]
    fn serialization_zero_rate_panics() {
        let _ = SimDuration::serialization(64, 0);
    }

    #[test]
    fn display_scales() {
        assert_eq!(SimDuration::from_picos(12).to_string(), "12ps");
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12.000ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(1200).to_string(), "1.200000s");
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_picos(10);
        assert_eq!(d.mul_f64(1.26).as_picos(), 13);
        assert_eq!(d.mul_f64(0.0).as_picos(), 0);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total, SimDuration::from_nanos(10));
    }
}
