//! The hierarchical calendar-queue event core — the hot scheduling path
//! of the simulator.
//!
//! [`CalendarQueue`] replaces the global binary heap with three
//! time-bucketed wheels (256 slots each) plus an overflow heap for
//! events beyond the wheel horizon:
//!
//! * **level 0** — one slot per bucket of `2^shift` picoseconds
//!   (default 4.096 ns), covering the next 256 ticks;
//! * **level 1** — one slot per 256 ticks, covering the next 2^16 ticks;
//! * **level 2** — one slot per 2^16 ticks, covering the next 2^24 ticks
//!   (~68 ms at the default bucket width);
//! * **overflow** — a small min-heap for the rare far-future event
//!   (retransmission timers of second-scale covert-channel bit periods).
//!
//! Buckets are intrusive singly-linked lists over a slab of event cells,
//! so steady-state schedule/pop performs **no allocation**: a cell is
//! carved from the free list, threaded through at most one list per
//! wheel level, and returned on pop. Events due in the bucket the cursor
//! currently points at sit in a descending sorted vec (`current`)
//! ordered by exact `(timestamp, seq)`, which is what preserves the
//! engine's same-instant FIFO guarantee bit-for-bit: the wheels only
//! ever decide *roughly when* an event is considered, the `(at, seq)`
//! key alone decides *in which order* it fires. Cancellation is lazy: a cancelled
//! cell stays linked wherever it is and is reclaimed when the queue next
//! touches it.
//!
//! Amortized cost is O(1) per schedule/pop: each cell descends through
//! at most two cascades before reaching the current-bucket heap, whose
//! size is bounded by the events sharing one bucket (a few, at
//! simulation densities). The [`ReferenceQueue`](crate::ReferenceQueue)
//! ordering oracle and the differential property suite
//! (`tests/differential.rs`) pin the equivalence.
//!
//! # Examples
//!
//! ```
//! use sim_core::{CalendarQueue, SimTime};
//!
//! let mut q = CalendarQueue::new();
//! q.schedule(SimTime::from_nanos(20), "late");
//! q.schedule(SimTime::from_nanos(10), "early");
//! let h = q.schedule(SimTime::from_nanos(15), "cancelled");
//! assert!(q.cancel(h));
//!
//! assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early")));
//! assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "late")));
//! assert_eq!(q.pop(), None);
//! ```

use crate::queue::{EventHandle, EventSchedule};
use crate::time::SimTime;
use ragnar_telemetry::profile::{self, Phase};
use ragnar_telemetry::{ActorId, Target, Tracer};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Slots per wheel level.
const SLOTS: usize = 256;
/// Mask extracting a slot index from a tick.
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// Ticks covered by levels 0–1.
const L1_TICKS: u64 = 1 << 16;
/// Ticks covered by the whole wheel hierarchy; beyond lies the overflow
/// heap.
const HORIZON_TICKS: u64 = 1 << 24;
/// Null link in the slab's intrusive lists.
const NIL: u32 = u32::MAX;

/// One event cell in the slab arena.
///
/// `event == None` marks a cancelled (or free) cell; `next` doubles as
/// the bucket-list link and the free-list link.
#[derive(Debug)]
struct Cell<E> {
    at: SimTime,
    seq: u64,
    event: Option<E>,
    next: u32,
}

/// Ordering key for the current bucket and the overflow heap: exact
/// event order, `(timestamp, seq)`, with the slot id carried along.
/// `seq` is unique per queue, so the slot never participates in an
/// ordering decision; it is included only to keep `Ord` total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapEntry {
    at_ps: u64,
    seq: u64,
    slot: u32,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at_ps
            .cmp(&other.at_ps)
            .then_with(|| self.seq.cmp(&other.seq))
            .then_with(|| self.slot.cmp(&other.slot))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The cursor bucket's events in exact `(at, seq)` order, kept as an
/// ascending sorted ring: the earliest entry lives at the front, so the
/// hot pop advances a head cursor (no shift at all), and a same-bucket
/// insert is one binary search plus a tail-side shift. The shape
/// matters: events scheduled *into* the cursor bucket mid-drain land
/// near the back (they fire after what is already pending), so the
/// common insert shifts only a handful of entries. This beats a binary heap on both ends: no cache-hostile
/// sift-down per pop, and a wheel-bucket refill sorts the batch once
/// instead of paying n heap pushes.
#[derive(Debug, Default)]
struct CurrentBucket {
    /// Ascending from `head`; `[..head]` is already-popped garbage,
    /// reclaimed when the bucket empties or resorts.
    entries: Vec<HeapEntry>,
    head: usize,
}

impl CurrentBucket {
    #[inline]
    fn is_empty(&self) -> bool {
        self.head == self.entries.len()
    }

    #[inline]
    fn peek(&self) -> Option<HeapEntry> {
        self.entries.get(self.head).copied()
    }

    #[inline]
    fn pop(&mut self) -> Option<HeapEntry> {
        let e = self.entries.get(self.head).copied()?;
        self.head += 1;
        if self.head == self.entries.len() {
            self.entries.clear();
            self.head = 0;
        }
        Some(e)
    }

    /// Inserts one entry, keeping the ascending order. Entries fired
    /// into the cursor bucket mid-drain mostly land near the tail, so
    /// the shift is short.
    #[inline]
    fn insert(&mut self, e: HeapEntry) {
        let pos = self.head + self.entries[self.head..].partition_point(|x| *x < e);
        self.entries.insert(pos, e);
    }

    /// Appends without ordering; the caller must [`Self::resort`]
    /// before the next peek or pop.
    #[inline]
    fn append_unsorted(&mut self, e: HeapEntry) {
        self.entries.push(e);
    }

    /// Restores the ascending invariant after a batch of appends,
    /// dropping the popped prefix.
    fn resort(&mut self) {
        self.entries.drain(..self.head);
        self.head = 0;
        self.entries.sort_unstable();
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.head = 0;
    }
}

/// The hierarchical calendar queue (see the module docs).
///
/// Drop-in compatible with [`ReferenceQueue`](crate::ReferenceQueue):
/// both implement [`EventSchedule`] and produce identical event
/// sequences. [`EventQueue`](crate::EventQueue) aliases this type.
#[derive(Debug)]
pub struct CalendarQueue<E> {
    /// Bucket width is `1 << shift` picoseconds.
    shift: u32,
    /// Tick whose bucket has been drained into `current`; all wheel
    /// cells have a strictly later tick, all `current` cells an equal or
    /// earlier one.
    cursor: u64,
    /// Intrusive list heads, `level * SLOTS + slot`.
    wheels: Vec<u32>,
    /// Cells resident per level (cancelled cells included).
    level_count: [usize; 3],
    /// Events due at or before the cursor tick, in exact `(at, seq)`
    /// order (earliest at the tail).
    current: CurrentBucket,
    /// Events beyond the wheel horizon.
    overflow: BinaryHeap<Reverse<HeapEntry>>,
    slab: Vec<Cell<E>>,
    free_head: u32,
    /// Pending, non-cancelled events.
    live: usize,
    seq: u64,
    now: SimTime,
    popped: u64,
    /// Ambient telemetry handle captured at construction; disabled
    /// outside a tracing session, where it costs one branch per
    /// [`Self::TELEMETRY_STRIDE`] operations.
    tracer: Tracer,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// Default bucket width: 2^12 ps = 4.096 ns, comparable to the
    /// serialization time of one 64 B frame at 200 Gbps — the event
    /// density the RNIC model generates.
    pub const DEFAULT_BUCKET_SHIFT: u32 = 12;

    /// Creates an empty queue with the default bucket width and the
    /// clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::with_bucket_shift(Self::DEFAULT_BUCKET_SHIFT)
    }

    /// Creates an empty queue whose buckets span `1 << shift`
    /// picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `shift > 32` (buckets beyond ~4 ms defeat the wheels).
    pub fn with_bucket_shift(shift: u32) -> Self {
        assert!(shift <= 32, "bucket shift {shift} out of range");
        CalendarQueue {
            shift,
            cursor: 0,
            wheels: vec![NIL; 3 * SLOTS],
            level_count: [0; 3],
            current: CurrentBucket::default(),
            overflow: BinaryHeap::new(),
            slab: Vec::new(),
            free_head: NIL,
            live: 0,
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            tracer: ragnar_telemetry::tracer(),
        }
    }

    /// Pops/schedules between queue-depth counter samples (power of
    /// two): dense enough for a depth timeline, sparse enough that the
    /// trace stays a small fraction of the event count.
    pub const TELEMETRY_STRIDE: u64 = 1 << 10;

    /// Emits a `queue_depth` counter sample every
    /// [`Self::TELEMETRY_STRIDE`]-th call when tracing is enabled.
    #[inline]
    fn sample_depth(&self, tick: u64) {
        if tick & (Self::TELEMETRY_STRIDE - 1) == 0 && self.tracer.enabled(Target::SimCore) {
            self.tracer.counter(
                Target::SimCore,
                "queue_depth",
                ActorId::GLOBAL,
                self.now.as_picos(),
                self.live as f64,
            );
        }
    }

    /// The current simulation clock (see [`EventSchedule::now`]).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total number of events popped since construction.
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` at `at` (see [`EventSchedule::schedule`]).
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventHandle {
        let _p = profile::enter(Phase::QueueSchedule);
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at} now={now}",
            at = at.as_picos(),
            now = self.now.as_picos()
        );
        let seq = self.seq;
        // The u64 seq counter cannot wrap in practice (one event per
        // simulated picosecond for half a year of wall time), but a wrap
        // would silently break same-instant FIFO, so debug builds assert.
        self.seq = self.seq.wrapping_add(1);
        debug_assert!(self.seq != 0, "event seq counter wrapped");
        let slot = self.alloc(at, seq, event);
        self.place(slot, at.as_picos(), seq);
        self.live += 1;
        self.sample_depth(seq);
        EventHandle { seq, slot }
    }

    /// Lazily cancels a pending event (see [`EventSchedule::cancel`]).
    ///
    /// O(1): the cell is emptied in place and reclaimed whenever the
    /// queue next walks over it.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        match self.slab.get_mut(handle.slot as usize) {
            Some(cell) if cell.seq == handle.seq && cell.event.is_some() => {
                cell.event = None;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// In-place access to a pending event, or `None` if the handle's
    /// event already fired or was cancelled.
    ///
    /// The event's fire time and position are fixed at [`schedule`]
    /// time; this only lets the caller amend the payload (e.g. append a
    /// packet to an already-scheduled batch event) without a
    /// cancel/reschedule round trip, which would change the seq order.
    ///
    /// [`schedule`]: CalendarQueue::schedule
    pub fn event_mut(&mut self, handle: EventHandle) -> Option<&mut E> {
        match self.slab.get_mut(handle.slot as usize) {
            Some(cell) if cell.seq == handle.seq => cell.event.as_mut(),
            _ => None,
        }
    }

    /// Timestamp of the earliest pending event, reclaiming cancelled
    /// cells encountered at the head.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            self.refill();
            let entry = self.current.peek()?;
            let slot = entry.slot;
            if self.slab[slot as usize].event.is_some() {
                return Some(self.slab[slot as usize].at);
            }
            self.current.pop();
            self.free(slot);
        }
    }

    /// Removes and returns the earliest pending event, advancing the
    /// clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_with_seq().map(|(at, _, e)| (at, e))
    }

    /// Removes and returns the earliest event only if it fires at or
    /// before `deadline`.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= deadline {
            self.pop()
        } else {
            None
        }
    }

    /// [`pop`](CalendarQueue::pop) with the insertion sequence number
    /// exposed (see [`EventSchedule::pop_with_seq`]).
    pub fn pop_with_seq(&mut self) -> Option<(SimTime, u64, E)> {
        let _p = profile::enter(Phase::QueuePop);
        loop {
            self.refill();
            let entry = self.current.pop()?;
            let cell = &mut self.slab[entry.slot as usize];
            debug_assert_eq!(cell.seq, entry.seq, "current entry aliases a recycled cell");
            let Some(event) = cell.event.take() else {
                // Cancelled after entering the current bucket.
                self.free(entry.slot);
                continue;
            };
            let at = cell.at;
            self.free(entry.slot);
            self.live -= 1;
            debug_assert!(at >= self.now, "event queue time went backwards");
            self.now = at;
            self.popped += 1;
            self.sample_depth(self.popped);
            return Some((at, entry.seq, event));
        }
    }

    /// [`pop_before`](CalendarQueue::pop_before) with the insertion
    /// sequence number exposed.
    pub fn pop_with_seq_before(&mut self, deadline: SimTime) -> Option<(SimTime, u64, E)> {
        if self.peek_time()? <= deadline {
            self.pop_with_seq()
        } else {
            None
        }
    }

    /// Drops all pending events without touching the clock.
    ///
    /// The seq counter keeps rising across `clear`, so handles issued
    /// before the clear stay stale forever.
    pub fn clear(&mut self) {
        self.slab.clear();
        self.free_head = NIL;
        self.wheels.fill(NIL);
        self.level_count = [0; 3];
        self.current.clear();
        self.overflow.clear();
        self.live = 0;
        self.cursor = self.now.as_picos() >> self.shift;
    }

    // ---- slab arena ----

    fn alloc(&mut self, at: SimTime, seq: u64, event: E) -> u32 {
        if self.free_head != NIL {
            let slot = self.free_head;
            let cell = &mut self.slab[slot as usize];
            self.free_head = cell.next;
            cell.at = at;
            cell.seq = seq;
            cell.event = Some(event);
            cell.next = NIL;
            slot
        } else {
            let slot = u32::try_from(self.slab.len()).expect("slab exceeds u32 slots");
            assert!(slot != NIL, "slab full");
            self.slab.push(Cell {
                at,
                seq,
                event: Some(event),
                next: NIL,
            });
            slot
        }
    }

    fn free(&mut self, slot: u32) {
        let cell = &mut self.slab[slot as usize];
        debug_assert!(cell.event.is_none(), "freeing a live cell");
        cell.next = self.free_head;
        self.free_head = slot;
    }

    // ---- wheel plumbing ----

    /// Files a cell by its tick relative to the cursor: due cells go to
    /// the `current` heap, near cells to the finest wheel that can hold
    /// them, far cells to the overflow heap.
    fn place(&mut self, slot: u32, at_ps: u64, seq: u64) {
        let tick = at_ps >> self.shift;
        if tick <= self.cursor {
            self.current.insert(HeapEntry { at_ps, seq, slot });
            return;
        }
        let d = tick - self.cursor;
        let (level, idx) = if d < SLOTS as u64 {
            (0, (tick & SLOT_MASK) as usize)
        } else if d < L1_TICKS {
            (1, ((tick >> 8) & SLOT_MASK) as usize)
        } else if d < HORIZON_TICKS {
            (2, ((tick >> 16) & SLOT_MASK) as usize)
        } else {
            self.overflow.push(Reverse(HeapEntry { at_ps, seq, slot }));
            return;
        };
        let head = level * SLOTS + idx;
        self.slab[slot as usize].next = self.wheels[head];
        self.wheels[head] = slot;
        self.level_count[level] += 1;
    }

    /// Moves the level-0 bucket at `idx` (the cursor's bucket) into the
    /// `current` heap, reclaiming cancelled cells.
    fn drain_l0(&mut self, idx: usize) {
        let mut cur = std::mem::replace(&mut self.wheels[idx], NIL);
        while cur != NIL {
            let next = self.slab[cur as usize].next;
            self.level_count[0] -= 1;
            let cell = &self.slab[cur as usize];
            if cell.event.is_some() {
                debug_assert_eq!(cell.at.as_picos() >> self.shift, self.cursor);
                self.current.append_unsorted(HeapEntry {
                    at_ps: cell.at.as_picos(),
                    seq: cell.seq,
                    slot: cur,
                });
            } else {
                self.free(cur);
            }
            cur = next;
        }
        self.current.resort();
    }

    /// Redistributes one upper-level bucket into the finer wheels (or
    /// `current`), reclaiming cancelled cells.
    fn cascade(&mut self, level: usize, idx: usize) {
        let mut cur = std::mem::replace(&mut self.wheels[level * SLOTS + idx], NIL);
        while cur != NIL {
            let cell = &self.slab[cur as usize];
            let next = cell.next;
            let (at_ps, seq, live) = (cell.at.as_picos(), cell.seq, cell.event.is_some());
            self.level_count[level] -= 1;
            if live {
                self.place(cur, at_ps, seq);
            } else {
                self.free(cur);
            }
            cur = next;
        }
    }

    /// Moves the cursor to tick `w`, cascading the destination window's
    /// upper-level buckets and draining the destination level-0 bucket.
    ///
    /// The caller guarantees no wheel cell lies strictly between the old
    /// cursor and `w` (that is what the refill scans establish), so only
    /// the destination's cascades are due.
    fn advance_to(&mut self, w: u64) {
        debug_assert!(w > self.cursor);
        let cross16 = (w >> 16) != (self.cursor >> 16);
        let cross8 = (w >> 8) != (self.cursor >> 8);
        self.cursor = w;
        if cross16 && self.level_count[2] > 0 {
            self.cascade(2, ((w >> 16) & SLOT_MASK) as usize);
        }
        if cross8 && self.level_count[1] > 0 {
            self.cascade(1, ((w >> 8) & SLOT_MASK) as usize);
        }
        if self.level_count[0] > 0 {
            self.drain_l0((w & SLOT_MASK) as usize);
        }
    }

    /// Advances the cursor until the `current` heap holds the earliest
    /// pending events (or the queue is known empty).
    fn refill(&mut self) {
        loop {
            if !self.current.is_empty() {
                return;
            }
            // Pull overflow cells that have come inside the wheel
            // horizon as the cursor advanced.
            while let Some(&Reverse(top)) = self.overflow.peek() {
                if (top.at_ps >> self.shift).saturating_sub(self.cursor) >= HORIZON_TICKS {
                    break;
                }
                self.overflow.pop();
                if self.slab[top.slot as usize].event.is_some() {
                    self.place(top.slot, top.at_ps, top.seq);
                } else {
                    self.free(top.slot);
                }
            }
            if !self.current.is_empty() {
                return;
            }
            if self.level_count.iter().all(|&c| c == 0) {
                // Wheels empty: re-anchor at the overflow minimum (the
                // next loop iteration transfers it), or report empty.
                match self.overflow.peek() {
                    Some(&Reverse(top)) => self.cursor = top.at_ps >> self.shift,
                    None => return,
                }
                continue;
            }
            // Nearest cell in the rest of the cursor's level-0 window.
            if self.level_count[0] > 0 {
                let base = self.cursor & !SLOT_MASK;
                let from = (self.cursor & SLOT_MASK) + 1;
                if let Some(s) = (from..SLOTS as u64).find(|&s| self.wheels[s as usize] != NIL) {
                    self.cursor = base + s;
                    self.drain_l0(s as usize);
                    continue;
                }
            }
            // Otherwise land on the start of the next window that can
            // hold cells. Level-k cells always sit within the cursor's
            // level-(k+1) window or the one after it (insertion keeps
            // their distance under the level span), so one scan per
            // level suffices.
            let w = if self.level_count[0] > 0 {
                // Level-0 cells wrapped into the next 256-tick window.
                (self.cursor | SLOT_MASK) + 1
            } else if self.level_count[1] > 0 {
                let base = self.cursor & !(L1_TICKS - 1);
                let from = ((self.cursor >> 8) & SLOT_MASK) + 1;
                (from..SLOTS as u64)
                    .find(|&s| self.wheels[SLOTS + s as usize] != NIL)
                    .map_or(base + L1_TICKS, |s| base + (s << 8))
            } else {
                let base = self.cursor & !(HORIZON_TICKS - 1);
                let from = ((self.cursor >> 16) & SLOT_MASK) + 1;
                (from..SLOTS as u64)
                    .find(|&s| self.wheels[2 * SLOTS + s as usize] != NIL)
                    .map_or(base + HORIZON_TICKS, |s| base + (s << 16))
            };
            self.advance_to(w);
        }
    }
}

impl<E> EventSchedule<E> for CalendarQueue<E> {
    fn now(&self) -> SimTime {
        CalendarQueue::now(self)
    }
    fn len(&self) -> usize {
        CalendarQueue::len(self)
    }
    fn events_processed(&self) -> u64 {
        CalendarQueue::events_processed(self)
    }
    fn schedule(&mut self, at: SimTime, event: E) -> EventHandle {
        CalendarQueue::schedule(self, at, event)
    }
    fn cancel(&mut self, handle: EventHandle) -> bool {
        CalendarQueue::cancel(self, handle)
    }
    fn peek_time(&mut self) -> Option<SimTime> {
        CalendarQueue::peek_time(self)
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        CalendarQueue::pop(self)
    }
    fn pop_with_seq(&mut self) -> Option<(SimTime, u64, E)> {
        CalendarQueue::pop_with_seq(self)
    }
    fn clear(&mut self) {
        CalendarQueue::clear(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut q = CalendarQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn event_mut_amends_pending_payload_in_place() {
        let mut q = CalendarQueue::new();
        let t = SimTime::from_nanos(5);
        let h = q.schedule(t, vec![1u32]);
        q.schedule(t, vec![9u32]);
        q.event_mut(h).expect("pending").push(2);
        // Position and seq order are untouched: the amended event still
        // pops first.
        assert_eq!(q.pop(), Some((t, vec![1, 2])));
        assert_eq!(q.pop(), Some((t, vec![9])));
        // Fired and cancelled events are inaccessible.
        assert!(q.event_mut(h).is_none());
        let h2 = q.schedule(SimTime::from_nanos(6), vec![3u32]);
        assert!(q.cancel(h2));
        assert!(q.event_mut(h2).is_none());
    }

    #[test]
    fn clock_tracks_pops() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_nanos(3), ());
        q.schedule(SimTime::from_nanos(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(3));
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(9));
        assert_eq!(q.events_processed(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_nanos(10), 'a');
        q.schedule(SimTime::from_nanos(20), 'b');
        assert_eq!(
            q.pop_before(SimTime::from_nanos(15)),
            Some((SimTime::from_nanos(10), 'a'))
        );
        assert_eq!(q.pop_before(SimTime::from_nanos(15)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_keeps_clock_and_reuses_slab() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_nanos(4), ());
        q.pop();
        q.schedule(SimTime::from_nanos(8), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_nanos(4));
        q.schedule(SimTime::from_nanos(6), ());
        assert_eq!(q.pop(), Some((SimTime::from_nanos(6), ())));
    }

    #[test]
    fn cancel_semantics() {
        let mut q = CalendarQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), 'a');
        let b = q.schedule(SimTime::from_nanos(2), 'b');
        q.schedule(SimTime::from_nanos(3), 'c');
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double cancel is stale");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1), 'a')));
        assert!(!q.cancel(a), "fired handle is stale");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(3), 'c')));
        assert_eq!(q.pop(), None);
        assert_eq!(q.events_processed(), 2, "cancelled events never fire");
    }

    #[test]
    fn recycled_slot_does_not_alias_old_handle() {
        let mut q = CalendarQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), 1u32);
        q.pop();
        // The freed cell is recycled for a new event; the old handle
        // must stay stale.
        let b = q.schedule(SimTime::from_nanos(2), 2u32);
        assert_eq!(a.slot, b.slot, "slab should reuse the freed slot");
        assert!(!q.cancel(a));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(2), 2)));
    }

    #[test]
    fn spans_wheel_levels_and_overflow() {
        // One event per decade of distance: same bucket, level 0, 1, 2,
        // and the overflow heap (bucket = 4.096 ns; overflow beyond
        // ~68.7 ms).
        let mut q = CalendarQueue::new();
        let times: Vec<SimTime> = [
            1u64 << 10,
            1 << 14,
            1 << 22,
            1 << 30,
            1 << 38,
            1 << 44,
            1 << 46,
        ]
        .iter()
        .map(|&ps| SimTime::from_picos(ps))
        .collect();
        // Schedule in reverse to exercise every placement path.
        for (i, &t) in times.iter().enumerate().rev() {
            q.schedule(t, i);
        }
        for (i, &t) in times.iter().enumerate() {
            assert_eq!(q.pop(), Some((t, i)));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn dense_same_bucket_collisions_stay_fifo() {
        let mut q = CalendarQueue::new();
        // Many events inside one bucket, some at identical picoseconds.
        for i in 0..500u64 {
            q.schedule(SimTime::from_picos(4096 + (i % 7)), i);
        }
        let mut out = Vec::new();
        while let Some((at, i)) = q.pop() {
            out.push((at, i));
        }
        let mut expect: Vec<(SimTime, u64)> = (0..500u64)
            .map(|i| (SimTime::from_picos(4096 + (i % 7)), i))
            .collect();
        expect.sort_by_key(|&(at, i)| (at, i));
        assert_eq!(out, expect);
    }

    #[test]
    fn interleaved_schedule_pop_across_rollover() {
        // Pops interleaved with schedules that keep landing just past
        // the level-0 window, forcing repeated wraps and cascades.
        let mut q = CalendarQueue::new();
        let mut t = 0u64;
        q.schedule(SimTime::from_picos(t), 0u64);
        let mut popped = 0u64;
        for i in 1..=2000u64 {
            let (at, _) = q.pop().expect("event pending");
            popped += 1;
            t = at.as_picos() + (1 << 12) * 300 + i % 13;
            q.schedule(SimTime::from_picos(t), i);
        }
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, 2001);
    }
}
