//! Deterministic random-number utilities.
//!
//! Every stochastic element of the simulation draws from a [`SimRng`] seeded
//! explicitly by the experiment, so re-running an experiment with the same
//! seed reproduces results bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derives a decorrelated 64-bit seed for the named stream.
///
/// This is the single seed-derivation scheme shared by [`SimRng::derive`]
/// and the experiment harness: the same `(seed, stream)` pair always maps
/// to the same derived seed, and distinct streams are decorrelated, so a
/// parallel sweep can hand every configuration its own deterministic seed
/// regardless of execution order or thread count.
///
/// # Examples
///
/// ```
/// assert_eq!(sim_core::derive_seed(1, "a"), sim_core::derive_seed(1, "a"));
/// assert_ne!(sim_core::derive_seed(1, "a"), sim_core::derive_seed(1, "b"));
/// ```
pub fn derive_seed(seed: u64, stream: &str) -> u64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15 ^ seed;
    for byte in stream.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x100_0000_01B3);
        h ^= h >> 29;
    }
    h
}

/// A seeded random source for one simulation instance.
///
/// Wraps [`rand::rngs::StdRng`] and adds the handful of distributions the
/// RNIC model needs (truncated Gaussian jitter, bounded integers), plus a
/// stable stream-splitting scheme so independent subsystems can derive
/// decorrelated sub-generators from one experiment seed.
///
/// # Examples
///
/// ```
/// use sim_core::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit experiment seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives a decorrelated sub-generator for the named stream.
    ///
    /// The same `(seed, stream)` pair always produces the same generator,
    /// so adding a new consumer of randomness never perturbs existing
    /// streams.
    pub fn derive(seed: u64, stream: &str) -> Self {
        SimRng::seed_from(derive_seed(seed, stream))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random()
    }

    /// Uniform value in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.random_range(lo..hi)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.inner.random::<f64>() < p
    }

    /// Standard normal draw (Box–Muller; two uniforms per call, one output,
    /// keeping the stream layout simple and deterministic).
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = 1.0 - self.inner.random::<f64>();
        let u2 = self.inner.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Gaussian jitter with the given standard deviation, truncated to
    /// ±3σ, in (fractional) picoseconds. Returned as a signed offset.
    pub fn jitter_ps(&mut self, sigma_ps: f64) -> f64 {
        if sigma_ps <= 0.0 {
            return 0.0;
        }
        let z = self.standard_normal().clamp(-3.0, 3.0);
        z * sigma_ps
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.uniform_range(0, i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derive_is_stable_and_decorrelated() {
        let mut a1 = SimRng::derive(1, "pcie");
        let mut a2 = SimRng::derive(1, "pcie");
        let mut b = SimRng::derive(1, "wire");
        assert_eq!(a1.next_u64(), a2.next_u64());
        // Overwhelmingly unlikely to collide if streams are decorrelated.
        assert_ne!(a1.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_range_bounds() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..1000 {
            let v = r.uniform_range(5, 10);
            assert!((5..10).contains(&v));
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = SimRng::seed_from(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn jitter_truncated() {
        let mut r = SimRng::seed_from(5);
        for _ in 0..5000 {
            assert!(r.jitter_ps(100.0).abs() <= 300.0);
        }
        assert_eq!(r.jitter_ps(0.0), 0.0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from(13);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
