//! The deterministic event queue at the heart of the simulator.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a particular instant.
///
/// Ordering is by time, then by insertion sequence number, so two events
/// scheduled for the same instant always fire in the order they were
/// scheduled. This makes the whole simulation deterministic regardless of
/// heap internals.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first order.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// Generic over the event payload `E` so that higher layers can define their
/// own event enums without this crate knowing about them.
///
/// # Examples
///
/// ```
/// use sim_core::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "late");
/// q.schedule(SimTime::from_nanos(10), "early");
/// q.schedule(SimTime::from_nanos(10), "early-second");
///
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The current simulation clock: the timestamp of the most recently
    /// popped event (or zero before any event fired).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events popped since construction.
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock: scheduling into the
    /// past would silently corrupt causality.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at} now={now}",
            at = at.as_picos(),
            now = self.now.as_picos()
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Removes and returns the earliest pending event, advancing the clock
    /// to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "event queue time went backwards");
        self.now = s.at;
        self.popped += 1;
        Some((s.at, s.event))
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `deadline`.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= deadline {
            self.pop()
        } else {
            None
        }
    }

    /// Drops all pending events without touching the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn clock_tracks_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(3), ());
        q.schedule(SimTime::from_nanos(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(3));
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(9));
        assert_eq!(q.events_processed(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), 'a');
        q.schedule(SimTime::from_nanos(20), 'b');
        assert_eq!(
            q.pop_before(SimTime::from_nanos(15)),
            Some((SimTime::from_nanos(10), 'a'))
        );
        assert_eq!(q.pop_before(SimTime::from_nanos(15)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(4), ());
        q.pop();
        q.schedule(SimTime::from_nanos(8), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_nanos(4));
    }
}
