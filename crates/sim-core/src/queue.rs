//! The deterministic event-scheduling contract and the reference
//! (binary-heap) backend.
//!
//! Two interchangeable backends implement [`EventSchedule`]:
//!
//! * [`ReferenceQueue`] (this module) — a `BinaryHeap` future-event list.
//!   Simple, obviously correct, and the ordering oracle the differential
//!   test layer checks the fast backend against.
//! * [`CalendarQueue`](crate::CalendarQueue) — the hierarchical calendar
//!   queue used on the hot path ([`EventQueue`](crate::EventQueue) is an
//!   alias for it).
//!
//! Both guarantee the same total order: events fire by timestamp, and
//! events scheduled for the same instant fire in the order they were
//! scheduled (seq-number FIFO). That guarantee is what makes every
//! simulation — and therefore every harness artifact digest — bit-exact
//! across backends, thread counts and machines.

use crate::time::SimTime;
use ragnar_telemetry::profile::{self, Phase};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// A ticket for a scheduled event, returned by
/// [`EventSchedule::schedule`] and accepted by
/// [`EventSchedule::cancel`].
///
/// Handles are only meaningful for the queue that issued them. A handle
/// whose event has already fired, been cancelled, or been cleared is
/// *stale*: cancelling it returns `false` and has no effect (slots are
/// generation-checked, so a recycled slot never aliases an old handle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle {
    pub(crate) seq: u64,
    pub(crate) slot: u32,
}

impl EventHandle {
    /// Sentinel slot for backends that do not use slot storage.
    pub(crate) const NO_SLOT: u32 = u32::MAX;
}

/// A deterministic future-event list: the scheduling contract of the
/// simulation engine.
///
/// The contract every backend upholds:
///
/// * `pop` yields events in non-decreasing timestamp order;
/// * events with equal timestamps fire in the order they were scheduled
///   (insertion-seq FIFO), so the simulation is deterministic regardless
///   of backend internals;
/// * the clock ([`now`](EventSchedule::now)) is the timestamp of the most
///   recently popped event, and scheduling into the past panics;
/// * cancellation is *lazy*: a cancelled event is unlinked when the
///   backend next encounters it, never eagerly searched for.
pub trait EventSchedule<E> {
    /// The current simulation clock: the timestamp of the most recently
    /// popped event (or zero before any event fired).
    fn now(&self) -> SimTime;

    /// Number of pending (non-cancelled) events.
    fn len(&self) -> usize;

    /// True if no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events popped since construction.
    fn events_processed(&self) -> u64;

    /// Schedules `event` to fire at absolute time `at`, returning a
    /// handle usable with [`cancel`](EventSchedule::cancel).
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock: scheduling into
    /// the past would silently corrupt causality.
    fn schedule(&mut self, at: SimTime, event: E) -> EventHandle;

    /// Lazily cancels a pending event. Returns `true` if the event was
    /// still pending (it will never fire), `false` for a stale handle.
    fn cancel(&mut self, handle: EventHandle) -> bool;

    /// Timestamp of the earliest pending event. Takes `&mut self` so
    /// backends may discard already-cancelled entries while peeking.
    fn peek_time(&mut self) -> Option<SimTime>;

    /// Removes and returns the earliest pending event, advancing the
    /// clock to its timestamp.
    fn pop(&mut self) -> Option<(SimTime, E)>;

    /// Removes and returns the earliest event only if it fires at or
    /// before `deadline`.
    fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= deadline {
            self.pop()
        } else {
            None
        }
    }

    /// Like [`pop`](EventSchedule::pop), but also exposes the event's
    /// insertion sequence number — the FIFO tiebreak among equal
    /// timestamps. Parallel engines use `(at, seq)` as the deterministic
    /// merge key when draining a batch of events.
    fn pop_with_seq(&mut self) -> Option<(SimTime, u64, E)>;

    /// Like [`pop_before`](EventSchedule::pop_before) with the insertion
    /// sequence number exposed.
    fn pop_with_seq_before(&mut self, deadline: SimTime) -> Option<(SimTime, u64, E)> {
        if self.peek_time()? <= deadline {
            self.pop_with_seq()
        } else {
            None
        }
    }

    /// Drops all pending events without touching the clock.
    fn clear(&mut self);
}

/// An event scheduled at a particular instant.
///
/// Ordering is by time, then by insertion sequence number, so two events
/// scheduled for the same instant always fire in the order they were
/// scheduled.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Ordering is deliberately inverted — smallest (at, seq) compares
        // greatest — because the only consumer is ReferenceQueue's
        // std::collections::BinaryHeap, which is a max-heap and must pop
        // the earliest event first. The calendar backend does not use
        // this impl; it orders raw (at, seq) keys directly.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The reference event-queue backend: a `BinaryHeap` future-event list.
///
/// This is the original engine implementation, kept as the ordering
/// oracle for the differential test layer and as the baseline of the
/// event-core microbenches. `O(log n)` schedule/pop; cancellation is
/// lazy (cancelled entries are skipped at pop time) but *registering* a
/// cancellation is `O(n)`, which is fine for an oracle and keeps the
/// schedule/pop hot path free of bookkeeping.
///
/// # Examples
///
/// ```
/// use sim_core::{EventSchedule, ReferenceQueue, SimTime};
///
/// let mut q = ReferenceQueue::new();
/// q.schedule(SimTime::from_nanos(20), "late");
/// q.schedule(SimTime::from_nanos(10), "early");
/// q.schedule(SimTime::from_nanos(10), "early-second");
///
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct ReferenceQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    /// Seqs cancelled but still buried in the heap; drained on contact.
    cancelled: HashSet<u64>,
    seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for ReferenceQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ReferenceQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        ReferenceQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The current simulation clock (see [`EventSchedule::now`]).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events popped since construction.
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` at `at` (see [`EventSchedule::schedule`]).
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventHandle {
        let _p = profile::enter(Phase::QueueSchedule);
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at} now={now}",
            at = at.as_picos(),
            now = self.now.as_picos()
        );
        let seq = self.seq;
        // The u64 seq counter cannot wrap in practice (one event per
        // simulated picosecond for half a year of wall time), but a wrap
        // would silently break same-instant FIFO, so debug builds assert.
        self.seq = self.seq.wrapping_add(1);
        debug_assert!(self.seq != 0, "event seq counter wrapped");
        self.heap.push(Scheduled { at, seq, event });
        EventHandle {
            seq,
            slot: EventHandle::NO_SLOT,
        }
    }

    /// Lazily cancels a pending event (see [`EventSchedule::cancel`]).
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        // O(n) pending check: exactness matters (the differential layer
        // compares cancel outcomes across backends), oracle speed does not.
        let pending =
            self.heap.iter().any(|s| s.seq == handle.seq) && !self.cancelled.contains(&handle.seq);
        if pending {
            self.cancelled.insert(handle.seq);
        }
        pending
    }

    /// Timestamp of the earliest pending event, discarding cancelled
    /// entries encountered on the way.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(s) = self.heap.peek() {
            if self.cancelled.is_empty() || !self.cancelled.remove(&s.seq) {
                return Some(s.at);
            }
            self.heap.pop();
        }
        None
    }

    /// Removes and returns the earliest pending event, advancing the
    /// clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_with_seq().map(|(at, _, e)| (at, e))
    }

    /// Removes and returns the earliest event only if it fires at or
    /// before `deadline`.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= deadline {
            self.pop()
        } else {
            None
        }
    }

    /// [`pop`](ReferenceQueue::pop) with the insertion sequence number
    /// exposed (see [`EventSchedule::pop_with_seq`]).
    pub fn pop_with_seq(&mut self) -> Option<(SimTime, u64, E)> {
        let _p = profile::enter(Phase::QueuePop);
        loop {
            let s = self.heap.pop()?;
            if !self.cancelled.is_empty() && self.cancelled.remove(&s.seq) {
                continue;
            }
            debug_assert!(s.at >= self.now, "event queue time went backwards");
            self.now = s.at;
            self.popped += 1;
            return Some((s.at, s.seq, s.event));
        }
    }

    /// [`pop_before`](ReferenceQueue::pop_before) with the insertion
    /// sequence number exposed.
    pub fn pop_with_seq_before(&mut self, deadline: SimTime) -> Option<(SimTime, u64, E)> {
        if self.peek_time()? <= deadline {
            self.pop_with_seq()
        } else {
            None
        }
    }

    /// Drops all pending events without touching the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
    }
}

impl<E> EventSchedule<E> for ReferenceQueue<E> {
    fn now(&self) -> SimTime {
        ReferenceQueue::now(self)
    }
    fn len(&self) -> usize {
        ReferenceQueue::len(self)
    }
    fn events_processed(&self) -> u64 {
        ReferenceQueue::events_processed(self)
    }
    fn schedule(&mut self, at: SimTime, event: E) -> EventHandle {
        ReferenceQueue::schedule(self, at, event)
    }
    fn cancel(&mut self, handle: EventHandle) -> bool {
        ReferenceQueue::cancel(self, handle)
    }
    fn peek_time(&mut self) -> Option<SimTime> {
        ReferenceQueue::peek_time(self)
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        ReferenceQueue::pop(self)
    }
    fn pop_with_seq(&mut self) -> Option<(SimTime, u64, E)> {
        ReferenceQueue::pop_with_seq(self)
    }
    fn clear(&mut self) {
        ReferenceQueue::clear(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut q = ReferenceQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn clock_tracks_pops() {
        let mut q = ReferenceQueue::new();
        q.schedule(SimTime::from_nanos(3), ());
        q.schedule(SimTime::from_nanos(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(3));
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(9));
        assert_eq!(q.events_processed(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = ReferenceQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = ReferenceQueue::new();
        q.schedule(SimTime::from_nanos(10), 'a');
        q.schedule(SimTime::from_nanos(20), 'b');
        assert_eq!(
            q.pop_before(SimTime::from_nanos(15)),
            Some((SimTime::from_nanos(10), 'a'))
        );
        assert_eq!(q.pop_before(SimTime::from_nanos(15)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q = ReferenceQueue::new();
        q.schedule(SimTime::from_nanos(4), ());
        q.pop();
        q.schedule(SimTime::from_nanos(8), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_nanos(4));
    }

    #[test]
    fn cancel_semantics() {
        let mut q = ReferenceQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), 'a');
        let b = q.schedule(SimTime::from_nanos(2), 'b');
        let c = q.schedule(SimTime::from_nanos(3), 'c');
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double cancel is stale");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1), 'a')));
        assert!(!q.cancel(a), "fired handle is stale");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(3), 'c')));
        assert_eq!(q.pop(), None);
        assert_eq!(q.events_processed(), 2, "cancelled events never fire");
        let _ = c;
    }

    #[test]
    fn cancelled_head_skipped_by_peek() {
        let mut q = ReferenceQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), 'a');
        q.schedule(SimTime::from_nanos(2), 'b');
        assert!(q.cancel(a));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(2)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(2), 'b')));
    }
}
