//! Statistics helpers used throughout the measurement code: running
//! moments, percentile summaries, Pearson correlation and least-squares
//! fits (the paper validates ULI linearity with a Pearson coefficient of
//! 0.9998), and time-series recording for bandwidth traces.

use crate::time::SimTime;

/// Running mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use sim_core::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 1 observation).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample variance with Bessel's correction (0 when n < 2).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A batch summary of samples: mean and arbitrary percentiles.
///
/// The paper's figures report the average plus the 10th/90th percentile
/// band; [`Summary::from_samples`] computes exactly that.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// 10th percentile.
    pub p10: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample set (the slice is copied and sorted internally).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize an empty sample set");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        let mut stats = OnlineStats::new();
        for &x in samples {
            stats.push(x);
        }
        Summary {
            count: samples.len(),
            mean: stats.mean(),
            std_dev: stats.population_std_dev(),
            p10: percentile_sorted(&sorted, 0.10),
            p50: percentile_sorted(&sorted, 0.50),
            p90: percentile_sorted(&sorted, 0.90),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
        }
    }
}

/// Percentile of an already-sorted slice by linear interpolation.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Pearson correlation coefficient of two equal-length series.
///
/// Returns 0 when either series has zero variance.
///
/// # Panics
///
/// Panics if the series lengths differ or are < 2.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "series lengths differ");
    assert!(x.len() >= 2, "need at least two points");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Least-squares line fit `y = slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Pearson correlation of the underlying data.
    pub r: f64,
}

/// Fits a straight line to `(x, y)` pairs by ordinary least squares.
///
/// # Panics
///
/// Panics if the series lengths differ, are < 2, or `x` has zero variance.
pub fn linear_fit(x: &[f64], y: &[f64]) -> LineFit {
    assert_eq!(x.len(), y.len(), "series lengths differ");
    assert!(x.len() >= 2, "need at least two points");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
    }
    assert!(sxx > 0.0, "x has zero variance");
    let slope = sxy / sxx;
    LineFit {
        slope,
        intercept: my - slope * mx,
        r: pearson(x, y),
    }
}

/// A recorded time series of `(instant, value)` points, e.g. a bandwidth
/// counter sampled over time or per-message latencies.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a point. Points must be pushed in non-decreasing time order.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the last recorded instant.
    pub fn push(&mut self, t: SimTime, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "time series must be pushed in order");
        }
        self.points.push((t, v));
    }

    /// All recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no points were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Values only, discarding timestamps.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }

    /// Mean of values within `[from, to)`.
    ///
    /// Returns `None` when the window contains no points.
    pub fn window_mean(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let mut stats = OnlineStats::new();
        for &(t, v) in &self.points {
            if t >= from && t < to {
                stats.push(v);
            }
        }
        if stats.count() == 0 {
            None
        } else {
            Some(stats.mean())
        }
    }

    /// Drops points older than `horizon` before `now` (the sliding window
    /// maintenance step of the paper's Algorithm 1).
    pub fn retain_window(&mut self, now: SimTime, horizon: crate::SimDuration) {
        let cutoff = if now.as_picos() > horizon.as_picos() {
            now - horizon
        } else {
            SimTime::ZERO
        };
        self.points.retain(|&(t, _)| t >= cutoff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn online_stats_moments() {
        let mut s = OnlineStats::new();
        for x in 1..=5 {
            s.push(x as f64);
        }
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!((s.population_variance() - 2.0).abs() < 1e-12);
        assert!((s.sample_variance() - 2.5).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.population_variance() - all.population_variance()).abs() < 1e-9);
        assert_eq!(left.count(), all.count());
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 5.0);
        assert_eq!(percentile_sorted(&sorted, 0.5), 3.0);
        assert!((percentile_sorted(&sorted, 0.25) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_matches_hand_computation() {
        let s = Summary::from_samples(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.p50 - 2.5).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
        let flat = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(pearson(&x, &flat), 0.0);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.5 * v + 2.0).collect();
        let fit = linear_fit(&x, &y);
        assert!((fit.slope - 3.5).abs() < 1e-9);
        assert!((fit.intercept - 2.0).abs() < 1e-9);
        assert!((fit.r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_series_window_ops() {
        let mut ts = TimeSeries::new();
        for i in 0..10 {
            ts.push(SimTime::from_micros(i), i as f64);
        }
        let m = ts
            .window_mean(SimTime::from_micros(2), SimTime::from_micros(5))
            .expect("window has points");
        assert!((m - 3.0).abs() < 1e-12);
        assert_eq!(
            ts.window_mean(SimTime::from_micros(100), SimTime::from_micros(200)),
            None
        );
        ts.retain_window(SimTime::from_micros(9), SimDuration::from_micros(3));
        assert_eq!(ts.len(), 4); // t = 6, 7, 8, 9
    }

    #[test]
    #[should_panic(expected = "pushed in order")]
    fn time_series_rejects_out_of_order() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_micros(5), 1.0);
        ts.push(SimTime::from_micros(4), 2.0);
    }
}
