//! Deterministic fast hashing for simulation-interior maps.
//!
//! The std `HashMap` default (`RandomState`/SipHash) costs two things
//! the hot packet path cannot afford: a per-lookup keyed SipHash over
//! what is usually a 4- or 8-byte id, and a *randomized* seed per
//! process. The simulator never exposes map iteration order to results
//! (anything order-sensitive would already be nondeterministic under
//! `RandomState` and would fail the golden-digest gate), but a fixed
//! hasher still buys reproducible memory layout for profiling and
//! removes the dominant lookup cost on maps keyed by QP numbers, PSNs
//! and flow ids.
//!
//! [`FxHasher`] is the Firefox/rustc multiply-mix hash: fold each
//! machine word into the state with a rotate, xor and odd-constant
//! multiply. It is not collision-resistant against adversarial keys —
//! fine here, since every key is simulator-generated (dense small
//! integers), never attacker-controlled.

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`] — drop-in for simulation-interior
/// maps keyed by small simulator-generated ids.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-style multiply-mix hasher. See the module docs for why
/// this is safe to use inside the simulator and nowhere else.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf) | (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut m1: FxHashMap<u64, u32> = FxHashMap::default();
        let mut m2: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000 {
            m1.insert(i * 7, i as u32);
            m2.insert(i * 7, i as u32);
        }
        // Same hasher, same insertion order: identical iteration order.
        assert!(m1.iter().zip(m2.iter()).all(|(a, b)| a == b));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        use std::hash::Hash;
        let h = |k: u64| {
            let mut hasher = FxHasher::default();
            k.hash(&mut hasher);
            hasher.finish()
        };
        // Dense small ints (the common key shape) must not collide.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(h(i)), "collision at {i}");
        }
    }

    #[test]
    fn tuple_and_bytes_keys_hash() {
        use std::hash::Hash;
        let mut a = FxHasher::default();
        (1u32, 2u64).hash(&mut a);
        let mut b = FxHasher::default();
        (1u32, 3u64).hash(&mut b);
        assert_ne!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"short");
        let mut d = FxHasher::default();
        d.write(b"shore");
        assert_ne!(c.finish(), d.finish());
    }
}
