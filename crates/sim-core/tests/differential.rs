//! Differential tests: `CalendarQueue` against the `ReferenceQueue`
//! ordering oracle.
//!
//! Arbitrary interleaved schedule/pop/cancel/pop_before programs are run
//! against both backends in lock-step; every observable — popped
//! `(time, event)` pairs, cancel outcomes, peeked timestamps, lengths,
//! clocks — must be identical. This is the proof obligation behind
//! swapping the default [`sim_core::EventQueue`] alias to the calendar
//! backend: artifact digests downstream are bit-stable only if the two
//! queues are observationally equivalent.

use proptest::prelude::*;
use sim_core::{CalendarQueue, EventHandle, ReferenceQueue, SimTime};

/// Bucket width of the default calendar configuration, in picoseconds.
const BUCKET_PS: u64 = 1 << CalendarQueue::<()>::DEFAULT_BUCKET_SHIFT;

/// Shapes a raw u64 into a schedule offset that exercises every
/// placement path: same-instant collisions, same-bucket collisions,
/// level-0/1/2 wheel distances, bucket/window rollover boundaries, and
/// the overflow heap.
fn shape_offset(raw: u64) -> u64 {
    let class = raw % 8;
    let jitter = (raw >> 3) % BUCKET_PS;
    match class {
        0 => 0,                                              // same instant
        1 => jitter,                                         // same or adjacent bucket
        2 => BUCKET_PS * (1 + (raw >> 3) % 255),             // level 0
        3 => BUCKET_PS * 256 * (1 + (raw >> 3) % 255),       // level 1
        4 => BUCKET_PS * (1 << 16) * (1 + (raw >> 3) % 255), // level 2
        5 => BUCKET_PS * (1 << 24) + jitter,                 // just past the horizon → overflow
        // Exact rollover boundaries: one tick / one window / one round.
        6 => [
            BUCKET_PS,
            BUCKET_PS * 256,
            BUCKET_PS * (1 << 16),
            BUCKET_PS * (1 << 24),
        ][((raw >> 3) % 4) as usize],
        _ => (raw >> 3) % (BUCKET_PS * (1 << 25)), // anywhere, incl. far overflow
    }
}

/// Runs one interleaved program against both backends, asserting
/// lock-step equivalence of every observable.
fn run_program(ops: &[(u8, u64)]) -> Result<(), TestCaseError> {
    let mut cal: CalendarQueue<u64> = CalendarQueue::new();
    let mut refq: ReferenceQueue<u64> = ReferenceQueue::new();
    let mut handles: Vec<(EventHandle, EventHandle)> = Vec::new();
    let mut next_id = 0u64;

    for &(op, raw) in ops {
        match op % 6 {
            // Schedule (twice as likely as each other op).
            0 | 1 => {
                let at = SimTime::from_picos(cal.now().as_picos() + shape_offset(raw));
                let hc = cal.schedule(at, next_id);
                let hr = refq.schedule(at, next_id);
                handles.push((hc, hr));
                next_id += 1;
            }
            // Pop.
            2 => {
                prop_assert_eq!(cal.pop(), refq.pop());
            }
            // Cancel a pseudo-randomly chosen previously issued handle
            // (possibly already fired or already cancelled — outcomes
            // must still agree).
            3 => {
                if !handles.is_empty() {
                    let (hc, hr) = handles[(raw as usize) % handles.len()];
                    prop_assert_eq!(cal.cancel(hc), refq.cancel(hr));
                }
            }
            // Pop with a deadline.
            4 => {
                let deadline = SimTime::from_picos(cal.now().as_picos() + shape_offset(raw));
                prop_assert_eq!(cal.pop_before(deadline), refq.pop_before(deadline));
            }
            // Peek.
            _ => {
                prop_assert_eq!(cal.peek_time(), refq.peek_time());
            }
        }
        prop_assert_eq!(cal.len(), refq.len());
        prop_assert_eq!(cal.now(), refq.now());
    }

    // Drain both queues fully; the tails must match element-for-element.
    loop {
        let (a, b) = (cal.pop(), refq.pop());
        prop_assert_eq!(a, b);
        if a.is_none() {
            break;
        }
    }
    prop_assert_eq!(cal.events_processed(), refq.events_processed());
    Ok(())
}

proptest! {
    /// Arbitrary interleaved schedule/pop/cancel/pop_before programs
    /// produce identical event sequences from both backends.
    #[test]
    fn calendar_matches_reference_on_arbitrary_programs(
        ops in prop::collection::vec((0u8..=255, 0u64..=u64::MAX), 1..400)
    ) {
        run_program(&ops)?;
    }

    /// Mass same-timestamp collisions: hundreds of events at identical
    /// instants interleaved with pops and cancels stay FIFO on both
    /// backends.
    #[test]
    fn calendar_matches_reference_on_mass_collisions(
        ops in prop::collection::vec((0u8..=255, 0u64..=u64::MAX), 1..300)
    ) {
        // Restrict offsets to classes 0/1 (same instant / same bucket)
        // by collapsing the raw value's class selector.
        let collided: Vec<(u8, u64)> =
            ops.iter().map(|&(op, raw)| (op, (raw & !7) | (raw % 2))).collect();
        run_program(&collided)?;
    }

    /// Bucket-rollover boundaries: offsets pinned to exact tick, window,
    /// and round edges, where cascade bookkeeping is most delicate.
    #[test]
    fn calendar_matches_reference_on_rollover_boundaries(
        ops in prop::collection::vec((0u8..=255, 0u64..=u64::MAX), 1..300)
    ) {
        let edges: Vec<(u8, u64)> =
            ops.iter().map(|&(op, raw)| (op, (raw & !7) | 6)).collect();
        run_program(&edges)?;
    }
}

/// Deterministic rollover torture: schedule–pop cycles that repeatedly
/// cross level-0 windows, level-1 windows, and the wheel horizon, with
/// cancellations of both pending and fired events.
#[test]
fn deterministic_rollover_and_cancel_torture() {
    let mut cal: CalendarQueue<u64> = CalendarQueue::new();
    let mut refq: ReferenceQueue<u64> = ReferenceQueue::new();
    let mut handles = Vec::new();
    let mut x = 0x9e37_79b9_7f4a_7c15u64; // deterministic LCG-ish stream
    for round in 0..5_000u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let off = shape_offset(x);
        let at = SimTime::from_picos(cal.now().as_picos() + off);
        handles.push((cal.schedule(at, round), refq.schedule(at, round)));
        if round % 3 == 0 {
            assert_eq!(cal.pop(), refq.pop(), "round {round}");
        }
        if round % 7 == 0 && !handles.is_empty() {
            let (hc, hr) = handles[(x as usize) % handles.len()];
            assert_eq!(cal.cancel(hc), refq.cancel(hr), "round {round}");
        }
        assert_eq!(cal.len(), refq.len(), "round {round}");
    }
    loop {
        let (a, b) = (cal.pop(), refq.pop());
        assert_eq!(a, b);
        if a.is_none() {
            break;
        }
    }
}

/// `clear` resets both backends to an equivalent state and stale
/// handles remain stale on both.
#[test]
fn clear_equivalence() {
    let mut cal: CalendarQueue<u32> = CalendarQueue::new();
    let mut refq: ReferenceQueue<u32> = ReferenceQueue::new();
    let hc = cal.schedule(SimTime::from_nanos(10), 1);
    let hr = refq.schedule(SimTime::from_nanos(10), 1);
    cal.schedule(SimTime::from_nanos(20), 2);
    refq.schedule(SimTime::from_nanos(20), 2);
    cal.pop();
    refq.pop();
    cal.clear();
    refq.clear();
    assert_eq!(cal.len(), refq.len());
    assert_eq!(cal.now(), refq.now());
    assert_eq!(cal.cancel(hc), refq.cancel(hr), "stale after clear");
    let at = SimTime::from_nanos(15);
    cal.schedule(at, 3);
    refq.schedule(at, 3);
    assert_eq!(cal.pop(), refq.pop());
    assert_eq!(cal.pop(), refq.pop());
}
