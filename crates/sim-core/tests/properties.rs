//! Property-based tests of the simulation-engine invariants.

use proptest::prelude::*;
use sim_core::{
    linear_fit, pearson, percentile_sorted, EventQueue, OnlineStats, ServiceResource, SimDuration,
    SimTime, Summary,
};

proptest! {
    /// Popping the event queue always yields non-decreasing timestamps,
    /// and equal timestamps come out in insertion order.
    #[test]
    fn event_queue_is_stable_priority_order(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(at >= lt);
                if at == lt {
                    prop_assert!(idx > lidx, "FIFO violated among equal timestamps");
                }
            }
            last = Some((at, idx));
        }
        prop_assert_eq!(q.events_processed(), times.len() as u64);
    }

    /// A single-server FIFO never overlaps service intervals and never
    /// starts before the request instant.
    #[test]
    fn service_resource_never_overlaps(
        jobs in prop::collection::vec((0u64..10_000, 1u64..500), 1..100)
    ) {
        let mut r = ServiceResource::new();
        let mut sorted = jobs.clone();
        sorted.sort();
        let mut prev_end = SimTime::ZERO;
        let mut total = SimDuration::ZERO;
        for (arrive, svc) in sorted {
            let now = SimTime::from_nanos(arrive);
            let svc = SimDuration::from_nanos(svc);
            let res = r.reserve(now, svc);
            prop_assert!(res.start >= now);
            prop_assert!(res.start >= prev_end);
            prop_assert_eq!(res.end - res.start, svc);
            prev_end = res.end;
            total += svc;
        }
        prop_assert_eq!(r.busy_time(), total);
    }

    /// Merging split statistics equals computing them in one pass.
    #[test]
    fn online_stats_merge_associative(
        data in prop::collection::vec(-1e6f64..1e6, 2..300),
        split in 1usize..200
    ) {
        let split = split.min(data.len() - 1);
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..split] {
            a.push(x);
        }
        for &x in &data[split..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!(
            (a.population_variance() - whole.population_variance()).abs()
                < 1e-5 * (1.0 + whole.population_variance())
        );
    }

    /// Percentiles are monotone in the quantile and bracketed by min/max.
    #[test]
    fn percentiles_monotone(mut data in prop::collection::vec(-1e4f64..1e4, 1..200)) {
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let p = percentile_sorted(&data, q);
            prop_assert!(p >= prev);
            prop_assert!(p >= data[0] && p <= data[data.len() - 1]);
            prev = p;
        }
        let s = Summary::from_samples(&data);
        prop_assert!(s.p10 <= s.p50 && s.p50 <= s.p90);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
    }

    /// Pearson correlation is bounded and exactly ±1 for affine data.
    #[test]
    fn pearson_bounded_and_affine(
        xs in prop::collection::vec(-1e3f64..1e3, 3..100),
        slope in prop::sample::select(vec![-2.5f64, -1.0, 0.5, 3.0]),
        intercept in -10f64..10.0
    ) {
        // Ensure xs is not constant.
        let mut xs = xs;
        xs[0] += 1.0;
        if xs.iter().all(|&v| v == xs[0]) {
            xs[1] += 2.0;
        }
        let ys: Vec<f64> = xs.iter().map(|&x| slope * x + intercept).collect();
        let r = pearson(&xs, &ys);
        prop_assert!((-1.0001..=1.0001).contains(&r));
        prop_assert!((r.abs() - 1.0).abs() < 1e-9, "affine data must give |r| = 1, got {r}");
        let fit = linear_fit(&xs, &ys);
        prop_assert!((fit.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
    }

    /// Serialization time scales linearly in bytes (up to rounding).
    #[test]
    fn serialization_additive(bytes_a in 1u64..65_536, bytes_b in 1u64..65_536) {
        let rate = 100_000_000_000u64; // 100 Gbps
        let a = SimDuration::serialization(bytes_a, rate);
        let b = SimDuration::serialization(bytes_b, rate);
        let both = SimDuration::serialization(bytes_a + bytes_b, rate);
        let sum = a + b;
        let diff = sum.as_picos() as i128 - both.as_picos() as i128;
        prop_assert!(diff.abs() <= 1, "rounding drift beyond 1 ps: {diff}");
    }
}
