//! # pythia-baseline — the persistent-channel baseline (Tsai et al.,
//! USENIX Security'19)
//!
//! Pythia attacks the RNIC's *on-board caches* (here: the MPT protection
//! cache) with evict+reload: the receiver times a read of a shared MR —
//! a slow read means its protection entry was evicted, i.e. the sender
//! transmitted a 1. This is a **persistent** channel (it communicates
//! through retained state), in contrast to Ragnar's volatile contention
//! channels, and the point of comparison for the paper's headline
//! "3.2× the bandwidth of state-of-the-art RDMA covert channels on
//! CX-5" (63.6 Kbps inter-MR vs. Pythia's 20 Kbps).
//!
//! The eviction set is *discovered by timing measurements*, mirroring
//! Pythia's reverse-engineering step — the attacker never inspects the
//! simulated cache's internals.

#![warn(missing_docs)]

use ragnar_core::covert::{count_errors, ChannelReport};
use ragnar_core::Testbed;
use rdma_verbs::{
    AccessFlags, ConnectOptions, DeviceKind, DeviceProfile, FlowId, MrHandle, QpHandle, Simulation,
    TrafficClass, WorkRequest,
};
use sim_core::{SimDuration, SimTime};

/// Parameters of the Pythia channel.
#[derive(Debug, Clone)]
pub struct PythiaConfig {
    /// Probe MRs registered for eviction-set discovery. `0` means "2×
    /// the device's MPT capacity" (guaranteed to contain an eviction
    /// set).
    pub probe_mr_count: usize,
    /// Overrides the device's MPT cache entry count (smaller caches make
    /// tests fast; `None` keeps the preset geometry).
    pub mpt_entries_override: Option<usize>,
    /// Bit period (calibrated so CX-5 lands at Pythia's reported
    /// ~20 Kbps: one evict+reload round plus synchronization margin).
    pub bit_period: SimDuration,
    /// Latency threshold multiplier over the hit baseline for declaring
    /// a miss.
    pub miss_threshold: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for PythiaConfig {
    fn default() -> Self {
        PythiaConfig {
            probe_mr_count: 0,
            mpt_entries_override: None,
            bit_period: SimDuration::from_micros(50),
            miss_threshold: 1.12,
            seed: 0x9171A,
        }
    }
}

/// The prepared attack world: server + sender + receiver with a shared
/// MR and a pool of sender-owned probe MRs.
pub struct PythiaWorld {
    /// The fabric.
    pub tb: Testbed,
    /// The MR whose MPT entry carries the covert state.
    pub shared_mr: MrHandle,
    /// Sender-side QP.
    pub tx_qp: QpHandle,
    /// Receiver-side QP.
    pub rx_qp: QpHandle,
    /// Probe MRs available for eviction.
    pub probe_mrs: Vec<MrHandle>,
    wr_seq: u64,
}

impl PythiaWorld {
    /// Builds the world on the given device.
    pub fn new(kind: DeviceKind, cfg: &PythiaConfig) -> Self {
        let mut profile = DeviceProfile::preset(kind);
        if let Some(entries) = cfg.mpt_entries_override {
            profile.mpt_cache_entries = entries;
        }
        let probe_count = if cfg.probe_mr_count == 0 {
            profile.mpt_cache_entries * 2
        } else {
            cfg.probe_mr_count
        };
        let mut tb = Testbed::new(profile, 2, cfg.seed);
        let shared_mr = tb.server_mr(4096, AccessFlags::remote_read_only());
        let probe_mrs: Vec<MrHandle> = (0..probe_count)
            .map(|_| tb.server_mr(4096, AccessFlags::remote_read_only()))
            .collect();
        let tx_qp = tb.connect_client(
            0,
            ConnectOptions {
                tc: TrafficClass::new(0),
                flow: FlowId(1),
                max_send_queue: 64,
            },
        );
        let rx_qp = tb.connect_client(
            1,
            ConnectOptions {
                tc: TrafficClass::new(0),
                flow: FlowId(2),
                max_send_queue: 8,
            },
        );
        PythiaWorld {
            tb,
            shared_mr,
            tx_qp,
            rx_qp,
            probe_mrs,
            wr_seq: 0,
        }
    }

    fn sim(&mut self) -> &mut Simulation {
        &mut self.tb.sim
    }

    /// Posts one 8 B read and runs until its completion; returns the
    /// latency in nanoseconds.
    pub fn timed_read(&mut self, qp: QpHandle, mr: &MrHandle) -> f64 {
        self.wr_seq += 1;
        let wr = WorkRequest::read(self.wr_seq, 0x1000, mr.addr(0), mr.key, 8);
        self.sim().post_send(qp, wr).expect("post read");
        // Drain until this completion arrives.
        loop {
            self.sim().run_until(SimTime::MAX);
            let done = self.sim().take_completions();
            if !done.is_empty() {
                let cqe = done.last().expect("completion").1;
                return cqe.latency().as_nanos_f64();
            }
        }
    }

    /// Posts reads over a set of MRs from the sender (pipelined, windowed
    /// by the QP's send-queue capacity) and waits for them to complete.
    pub fn touch_all(&mut self, qp: QpHandle, mrs: &[MrHandle]) {
        let mut waiting = 0usize;
        for mr in mrs {
            self.wr_seq += 1;
            let wr = WorkRequest::read(self.wr_seq, 0x2000, mr.addr(0), mr.key, 8);
            loop {
                match self.sim().post_send(qp, wr) {
                    Ok(()) => {
                        waiting += 1;
                        break;
                    }
                    Err(rdma_verbs::VerbsError::SendQueueFull) => {
                        // Drain some completions, then retry.
                        self.sim().run_until(SimTime::MAX);
                        waiting -= self.sim().take_completions().len();
                    }
                    Err(e) => panic!("post touch failed: {e}"),
                }
            }
        }
        while waiting > 0 {
            self.sim().run_until(SimTime::MAX);
            waiting -= self.sim().take_completions().len();
        }
    }

    /// Measures the hit-latency baseline of the shared MR.
    pub fn hit_baseline(&mut self) -> f64 {
        // First read warms the entry; average a few warm reads.
        let qp = self.rx_qp;
        let shared = self.shared_mr;
        self.timed_read(qp, &shared);
        let n = 8;
        let mut acc = 0.0;
        for _ in 0..n {
            acc += self.timed_read(qp, &shared);
        }
        acc / n as f64
    }

    /// True if reading the shared MR misses the MPT cache (latency above
    /// `threshold` ns). The read also reloads the entry.
    pub fn probe_is_miss(&mut self, threshold: f64) -> bool {
        let qp = self.rx_qp;
        let shared = self.shared_mr;
        self.timed_read(qp, &shared) > threshold
    }

    /// Pythia's reverse-engineering step: discovers a minimal eviction
    /// set for the shared MR by timing alone (group reduction).
    ///
    /// Returns the set, or `None` if the probe pool cannot evict the
    /// entry at all.
    pub fn discover_eviction_set(&mut self, threshold: f64) -> Option<Vec<MrHandle>> {
        let evicts = |world: &mut PythiaWorld, set: &[MrHandle]| -> bool {
            // Load the shared entry, touch the candidate set, re-probe.
            let rx = world.rx_qp;
            let tx = world.tx_qp;
            let shared = world.shared_mr;
            world.timed_read(rx, &shared);
            world.touch_all(tx, set);
            world.probe_is_miss(threshold)
        };
        let mut set: Vec<MrHandle> = self.probe_mrs.clone();
        if !evicts(self, &set) {
            return None;
        }
        // Group reduction: repeatedly split into groups and drop any
        // group whose removal still evicts.
        while set.len() > 24 {
            let groups = 8;
            let group_len = set.len().div_ceil(groups);
            let mut reduced = false;
            for g in 0..groups {
                let lo = g * group_len;
                if lo >= set.len() {
                    break;
                }
                let hi = (lo + group_len).min(set.len());
                let candidate: Vec<MrHandle> =
                    set[..lo].iter().chain(&set[hi..]).copied().collect();
                if !candidate.is_empty() && evicts(self, &candidate) {
                    set = candidate;
                    reduced = true;
                    break;
                }
            }
            if !reduced {
                break;
            }
        }
        // Final element-wise reduction.
        let mut i = 0;
        while i < set.len() {
            let mut candidate = set.clone();
            candidate.remove(i);
            if !candidate.is_empty() && evicts(self, &candidate) {
                set = candidate;
            } else {
                i += 1;
            }
        }
        Some(set)
    }
}

/// Result of one Pythia channel run.
#[derive(Debug, Clone)]
pub struct PythiaRun {
    /// Channel evaluation (same report type as the Ragnar channels, for
    /// direct Table-V-style comparison).
    pub report: ChannelReport,
    /// Discovered eviction-set size.
    pub eviction_set_size: usize,
}

/// Runs the evict+reload covert channel transmitting `bits` on `kind`.
///
/// # Panics
///
/// Panics if no eviction set can be discovered (probe pool too small for
/// the device's MPT geometry).
pub fn run_channel(kind: DeviceKind, bits: &[bool], cfg: &PythiaConfig) -> PythiaRun {
    let mut world = PythiaWorld::new(kind, cfg);
    let baseline = world.hit_baseline();
    let threshold = baseline * cfg.miss_threshold;
    let eviction_set = world
        .discover_eviction_set(threshold)
        .expect("probe pool must contain an eviction set");

    let mut levels = Vec::with_capacity(bits.len());
    let mut decoded = Vec::with_capacity(bits.len());
    // Align to a bit grid after discovery.
    let mut bit_start = world.tb.sim.now() + cfg.bit_period;
    for &bit in bits {
        // Receiver reloads the entry at the bit start.
        world.tb.sim.run_until(bit_start);
        let rx = world.rx_qp;
        let shared = world.shared_mr;
        world.timed_read(rx, &shared);
        // Sender evicts (bit 1) or stays idle (bit 0).
        if bit {
            let tx = world.tx_qp;
            let set = eviction_set.clone();
            world.touch_all(tx, &set);
        }
        // Receiver probes near the end of the bit.
        world
            .tb
            .sim
            .run_until(bit_start + cfg.bit_period.mul_f64(0.8));
        let lat = world.timed_read(rx, &shared);
        levels.push(lat);
        decoded.push(lat > threshold);
        bit_start += cfg.bit_period;
    }
    let errors = count_errors(bits, &decoded);
    PythiaRun {
        report: ChannelReport {
            device: kind,
            bits_sent: bits.len(),
            bit_errors: errors,
            raw_bandwidth_bps: 1.0 / cfg.bit_period.as_secs_f64(),
            levels,
            decoded,
        },
        eviction_set_size: eviction_set.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ragnar_core::covert::random_bits;

    fn small_cache_cfg() -> PythiaConfig {
        PythiaConfig {
            mpt_entries_override: Some(128),
            ..PythiaConfig::default()
        }
    }

    #[test]
    fn hit_miss_latencies_are_separable() {
        let cfg = small_cache_cfg();
        let mut world = PythiaWorld::new(DeviceKind::ConnectX5, &cfg);
        let baseline = world.hit_baseline();
        // Evict by touching the full probe pool, then time the reload.
        let tx = world.tx_qp;
        let probes = world.probe_mrs.clone();
        world.touch_all(tx, &probes);
        let rx = world.rx_qp;
        let shared = world.shared_mr;
        let miss = world.timed_read(rx, &shared);
        assert!(
            miss > baseline * 1.1,
            "MPT miss should be visibly slower: hit {baseline} vs miss {miss}"
        );
    }

    #[test]
    fn eviction_set_discovery_finds_minimal_set() {
        let cfg = small_cache_cfg();
        let mut world = PythiaWorld::new(DeviceKind::ConnectX5, &cfg);
        let baseline = world.hit_baseline();
        let set = world
            .discover_eviction_set(baseline * cfg.miss_threshold)
            .expect("discoverable");
        // CX-5's MPT is 8-way: the minimal eviction set is the
        // associativity.
        assert!(
            set.len() >= 8 && set.len() <= 12,
            "eviction set should be near the associativity, got {}",
            set.len()
        );
        // And it really evicts.
        let rx = world.rx_qp;
        let shared = world.shared_mr;
        world.timed_read(rx, &shared);
        let tx = world.tx_qp;
        world.touch_all(tx, &set);
        assert!(world.probe_is_miss(baseline * cfg.miss_threshold));
    }

    #[test]
    fn channel_round_trips_bits() {
        let cfg = small_cache_cfg();
        let bits = random_bits(48, 3);
        let run = run_channel(DeviceKind::ConnectX5, &bits, &cfg);
        assert!(
            run.report.error_rate() < 0.05,
            "Pythia's channel is low-error: {}",
            run.report.error_rate()
        );
        // ~20 Kbps at the default 50 µs bit period.
        assert!((run.report.raw_bandwidth_bps - 20_000.0).abs() < 1.0);
    }
}
