//! Worked observability example: capture a Perfetto timeline of one
//! Grain-IV intra-MR covert transmission.
//!
//! ```text
//! cargo run --release -p ragnar-core --example trace_covert
//! ```
//!
//! Then open the produced `trace_covert.json` at <https://ui.perfetto.dev>
//! (or `chrome://tracing`). Each host is a process track; lane 0 is the
//! device (wire hops, TPU/PU pipeline spans, faults) and lane *n* is
//! QP *n* (completions, ULI samples, retransmits).

use ragnar_core::covert::intra_mr::{default_config, run};
use ragnar_core::covert::parse_bits;
use ragnar_telemetry::{chrome_trace_json, Session, TargetSet, TraceCell};
use rdma_verbs::DeviceKind;

fn main() {
    let kind = DeviceKind::ConnectX4;
    let bits = parse_bits("1011001110001011");
    let cfg = default_config(kind);

    // Install a tracing session on this thread: every simulation, NIC,
    // probe and injector constructed inside `run` picks it up ambiently.
    let session = Session::ring(TargetSet::ALL, 1 << 20, true);
    let guard = session.install();
    let result = run(kind, &bits, &cfg);
    drop(guard);
    let report = session.finish();

    println!(
        "sent {} bits on {kind}, {} errors ({:.2}%); captured {} trace events",
        result.report.bits_sent,
        result.report.bit_errors,
        result.report.error_rate() * 100.0,
        report.total_events,
    );
    if let Some(m) = &report.metrics {
        for (name, h) in &m.histograms {
            println!(
                "  {name}: n={}  p50={:.1} ns  p99={:.1} ns  max={:.1} ns",
                h.count,
                h.p50 as f64 / 1e3,
                h.p99 as f64 / 1e3,
                h.max as f64 / 1e3,
            );
        }
    }

    let cells = [TraceCell {
        label: format!("intra_mr {kind}"),
        index: 0,
        events: &report.events,
    }];
    let path = "trace_covert.json";
    std::fs::write(path, chrome_trace_json(&cells)).expect("write trace");
    println!("wrote {path} — load it in https://ui.perfetto.dev");
}
