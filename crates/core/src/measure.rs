//! Measurement drivers shared by every experiment: saturating traffic
//! generators, the ULI probe of §IV-C, and bandwidth samplers.

use ragnar_telemetry as telemetry;
use rdma_verbs::{App, Cqe, Ctx, HostId, MrKey, Opcode, QpHandle, VerbsError, WorkRequest};
use sim_core::{SimDuration, SimTime, TimeSeries};
use std::cell::RefCell;
use std::rc::Rc;

/// A `(remote key, remote address)` target of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Target {
    /// Remote MR key.
    pub key: MrKey,
    /// Remote virtual address.
    pub addr: u64,
}

/// Deterministic remote-address generators for traffic flows.
#[derive(Debug, Clone)]
pub enum AddressPattern {
    /// Always the same target.
    Fixed(Target),
    /// Cycle through the listed targets (the paper's "alternately
    /// accessing two addresses").
    Cycle(Vec<Target>),
    /// Stride within one MR: `addr = base + (i % count) * stride`.
    Stride {
        /// MR key.
        key: MrKey,
        /// First address.
        base: u64,
        /// Stride in bytes.
        stride: u64,
        /// Number of distinct addresses.
        count: u64,
    },
}

impl AddressPattern {
    /// The `i`-th target of the pattern.
    ///
    /// # Panics
    ///
    /// Panics if a `Cycle` pattern is empty.
    pub fn target(&self, i: u64) -> Target {
        match self {
            AddressPattern::Fixed(t) => *t,
            AddressPattern::Cycle(ts) => {
                assert!(!ts.is_empty(), "empty cycle pattern");
                ts[(i % ts.len() as u64) as usize]
            }
            AddressPattern::Stride {
                key,
                base,
                stride,
                count,
            } => Target {
                key: *key,
                addr: base + (i % count) * stride,
            },
        }
    }
}

/// Mutable counters of one traffic flow, shared between the app and the
/// harness.
#[derive(Debug, Default)]
pub struct FlowStats {
    /// Successfully completed messages.
    pub completed_msgs: u64,
    /// Successfully completed payload bytes.
    pub completed_bytes: u64,
    /// Completions with remote errors.
    pub errors: u64,
    /// Completion timestamps and byte counts, if recording is enabled.
    pub completions: Option<TimeSeries>,
}

impl FlowStats {
    /// New zeroed stats; `record` enables the per-completion time series.
    pub fn new(record: bool) -> Rc<RefCell<FlowStats>> {
        Rc::new(RefCell::new(FlowStats {
            completions: record.then(TimeSeries::new),
            ..FlowStats::default()
        }))
    }

    /// Mean goodput over `[from, to)` in bits per second, from the counter
    /// totals (requires the window to cover the whole run) — prefer
    /// [`goodput_bps`] for arbitrary windows.
    pub fn total_goodput_bps(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.completed_bytes as f64 * 8.0 / elapsed.as_secs_f64()
    }
}

/// Goodput over `[from, to)` from a recorded completion series, in bits
/// per second.
pub fn goodput_bps(series: &TimeSeries, from: SimTime, to: SimTime) -> f64 {
    let bytes: f64 = series
        .points()
        .iter()
        .filter(|&&(t, _)| t >= from && t < to)
        .map(|&(_, b)| b)
        .sum();
    let secs = (to - from).as_secs_f64();
    if secs <= 0.0 {
        0.0
    } else {
        bytes * 8.0 / secs
    }
}

/// A closed-loop traffic generator: keeps the send queues of all its QPs
/// full with `opcode` messages of `msg_len` bytes following an address
/// pattern. The building block of every competing flow in Fig. 4 and the
/// covert-channel senders.
pub struct SaturatingFlow {
    qps: Vec<QpHandle>,
    opcode: Opcode,
    msg_len: u64,
    pattern: AddressPattern,
    local_addr: u64,
    seq: u64,
    stats: Rc<RefCell<FlowStats>>,
    /// When set, the flow stops reposting (the generator drains).
    paused: Rc<RefCell<bool>>,
}

impl SaturatingFlow {
    /// Creates the generator. `stats` receives completion accounting;
    /// `paused` lets the harness silence the flow (e.g. the covert sender
    /// idles between frames).
    pub fn new(
        qps: Vec<QpHandle>,
        opcode: Opcode,
        msg_len: u64,
        pattern: AddressPattern,
        local_addr: u64,
        stats: Rc<RefCell<FlowStats>>,
        paused: Rc<RefCell<bool>>,
    ) -> Self {
        assert!(!qps.is_empty(), "flow needs at least one QP");
        SaturatingFlow {
            qps,
            opcode,
            msg_len,
            pattern,
            local_addr,
            seq: 0,
            stats,
            paused,
        }
    }

    /// Replaces the address pattern (covert senders switch per bit).
    pub fn set_pattern(&mut self, pattern: AddressPattern) {
        self.pattern = pattern;
    }

    fn request(&mut self) -> WorkRequest {
        let t = self.pattern.target(self.seq);
        self.seq += 1;
        match self.opcode {
            Opcode::Read => {
                WorkRequest::read(self.seq, self.local_addr, t.addr, t.key, self.msg_len)
            }
            Opcode::Write => {
                WorkRequest::write(self.seq, self.local_addr, t.addr, t.key, self.msg_len)
            }
            Opcode::Send => WorkRequest::send(self.seq, self.local_addr, self.msg_len),
            Opcode::AtomicFetchAdd => {
                WorkRequest::fetch_add(self.seq, self.local_addr, t.addr, t.key, 1)
            }
            Opcode::AtomicCmpSwap => {
                WorkRequest::cmp_swap(self.seq, self.local_addr, t.addr, t.key, 0, 1)
            }
        }
    }

    fn fill(&mut self, ctx: &mut Ctx<'_>, qp: QpHandle) {
        if *self.paused.borrow() {
            return;
        }
        loop {
            let wr = self.request();
            match ctx.post_send(qp, wr) {
                Ok(()) => {}
                Err(VerbsError::SendQueueFull) | Err(VerbsError::QpInError) => {
                    // Undo the sequence advance for the rejected request so
                    // patterns stay phase-accurate.
                    self.seq -= 1;
                    break;
                }
                Err(e) => panic!("unexpected post error: {e}"),
            }
        }
    }
}

impl App for SaturatingFlow {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let qps = self.qps.clone();
        for qp in qps {
            self.fill(ctx, qp);
        }
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_>, _host: HostId, cqe: Cqe) {
        {
            let mut s = self.stats.borrow_mut();
            if cqe.status.is_ok() {
                s.completed_msgs += 1;
                s.completed_bytes += cqe.byte_len;
                if let Some(ts) = s.completions.as_mut() {
                    ts.push(cqe.completed_at, cqe.byte_len as f64);
                }
            } else {
                s.errors += 1;
            }
        }
        let qp = self
            .qps
            .iter()
            .copied()
            .find(|q| q.qp == cqe.qp)
            .unwrap_or(self.qps[0]);
        self.fill(ctx, qp);
    }
}

/// One ULI observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UliSample {
    /// Completion time.
    pub at: SimTime,
    /// Unit latency increase in nanoseconds:
    /// `Lat_total / (len_sq + 1)` with the queue kept full.
    pub uli_ns: f64,
    /// Raw end-to-end latency in nanoseconds.
    pub latency_ns: f64,
    /// The remote address the probe touched.
    pub addr: u64,
}

/// The §IV-C measurement probe: keeps one QP's send queue at its maximum
/// depth with fixed-size reads following an address pattern and records
/// `ULI ≈ Lat_total / (len_sq + 1)` per completion.
pub struct UliProbe {
    qp: QpHandle,
    depth: u64,
    msg_len: u64,
    pattern: AddressPattern,
    local_addr: u64,
    seq: u64,
    inflight_addr: std::collections::HashMap<u64, u64>,
    samples: Rc<RefCell<Vec<UliSample>>>,
    tracer: telemetry::Tracer,
    metrics: telemetry::Metrics,
}

impl UliProbe {
    /// Creates a probe over `qp`, whose connect options must have set
    /// `max_send_queue = depth`.
    pub fn new(
        qp: QpHandle,
        depth: usize,
        msg_len: u64,
        pattern: AddressPattern,
        local_addr: u64,
        samples: Rc<RefCell<Vec<UliSample>>>,
    ) -> Self {
        assert!(depth > 0, "probe depth must be positive");
        UliProbe {
            qp,
            depth: depth as u64,
            msg_len,
            pattern,
            local_addr,
            seq: 0,
            inflight_addr: std::collections::HashMap::new(),
            samples,
            tracer: telemetry::tracer(),
            metrics: telemetry::metrics(),
        }
    }

    fn post_one(&mut self, ctx: &mut Ctx<'_>) -> bool {
        let t = self.pattern.target(self.seq);
        let wr_id = self.seq;
        self.seq += 1;
        let wr = WorkRequest::read(wr_id, self.local_addr, t.addr, t.key, self.msg_len);
        match ctx.post_send(self.qp, wr) {
            Ok(()) => {
                self.inflight_addr.insert(wr_id, t.addr);
                true
            }
            Err(VerbsError::SendQueueFull) | Err(VerbsError::QpInError) => {
                self.seq -= 1;
                false
            }
            Err(e) => panic!("unexpected post error: {e}"),
        }
    }
}

impl App for UliProbe {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        while self.post_one(ctx) {}
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_>, _host: HostId, cqe: Cqe) {
        let addr = self.inflight_addr.remove(&cqe.wr_id).unwrap_or(0);
        if cqe.status.is_ok() {
            let lat = cqe.latency().as_nanos_f64();
            let uli = lat / self.depth as f64;
            if self.metrics.enabled() {
                self.metrics.record_ns("uli_ns", uli);
                self.metrics.record_ns("uli_latency_ns", lat);
            }
            if self.tracer.enabled(telemetry::Target::Core) {
                self.tracer.instant(
                    telemetry::Target::Core,
                    "uli_sample",
                    telemetry::ActorId::qp(self.qp.host.0, self.qp.qp.0),
                    cqe.completed_at.as_picos(),
                    &[("uli_ns", uli.into()), ("addr", addr.into())],
                );
            }
            self.samples.borrow_mut().push(UliSample {
                at: cqe.completed_at,
                uli_ns: uli,
                latency_ns: lat,
                addr,
            });
        }
        self.post_one(ctx);
    }
}

/// Samples a host's NIC counters at a fixed interval — the observable a
/// HARMONIC-style defense gets to see.
pub struct CounterSampler {
    host: HostId,
    interval: SimDuration,
    samples: Rc<RefCell<Vec<(SimTime, rnic_model::CounterSnapshot)>>>,
}

impl CounterSampler {
    /// Creates the sampler.
    pub fn new(
        host: HostId,
        interval: SimDuration,
        samples: Rc<RefCell<Vec<(SimTime, rnic_model::CounterSnapshot)>>>,
    ) -> Self {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        CounterSampler {
            host,
            interval,
            samples,
        }
    }
}

impl App for CounterSampler {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.interval, 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let snap = ctx.counters(self.host).snapshot();
        self.samples.borrow_mut().push((ctx.now(), snap));
        ctx.set_timer(self.interval, 0);
    }
}

/// Samples a [`FlowStats`] at a fixed interval, producing a bandwidth
/// time series in bits per second — the `ethtool`-style monitor the
/// covert Rx and Algorithm 1 use.
pub struct BandwidthSampler {
    stats: Rc<RefCell<FlowStats>>,
    interval: SimDuration,
    last_bytes: u64,
    series: Rc<RefCell<TimeSeries>>,
}

impl BandwidthSampler {
    /// Creates the sampler.
    pub fn new(
        stats: Rc<RefCell<FlowStats>>,
        interval: SimDuration,
        series: Rc<RefCell<TimeSeries>>,
    ) -> Self {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        BandwidthSampler {
            stats,
            interval,
            last_bytes: 0,
            series,
        }
    }
}

impl App for BandwidthSampler {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.interval, 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let bytes = self.stats.borrow().completed_bytes;
        let delta = bytes - self.last_bytes;
        self.last_bytes = bytes;
        let bps = delta as f64 * 8.0 / self.interval.as_secs_f64();
        self.series.borrow_mut().push(ctx.now(), bps);
        ctx.set_timer(self.interval, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::Testbed;
    use rdma_verbs::{AccessFlags, DeviceProfile, FlowId, TrafficClass};
    use sim_core::linear_fit;

    #[test]
    fn pattern_generation() {
        let key = MrKey(1);
        let fixed = AddressPattern::Fixed(Target { key, addr: 100 });
        assert_eq!(fixed.target(5).addr, 100);
        let cyc = AddressPattern::Cycle(vec![Target { key, addr: 0 }, Target { key, addr: 64 }]);
        assert_eq!(cyc.target(0).addr, 0);
        assert_eq!(cyc.target(1).addr, 64);
        assert_eq!(cyc.target(2).addr, 0);
        let st = AddressPattern::Stride {
            key,
            base: 1000,
            stride: 8,
            count: 3,
        };
        assert_eq!(st.target(0).addr, 1000);
        assert_eq!(st.target(4).addr, 1008);
    }

    #[test]
    fn saturating_flow_sustains_throughput() {
        let mut tb = Testbed::new(DeviceProfile::connectx5(), 1, 11);
        let mr = tb.server_mr(1 << 21, AccessFlags::remote_all());
        let qp = tb.connect_client_with(0, TrafficClass::new(0), FlowId(1), 32);
        let stats = FlowStats::new(false);
        let paused = Rc::new(RefCell::new(false));
        let app = tb.sim.add_app(Box::new(SaturatingFlow::new(
            vec![qp],
            Opcode::Read,
            4096,
            AddressPattern::Fixed(Target {
                key: mr.key,
                addr: mr.addr(0),
            }),
            0x1000,
            Rc::clone(&stats),
            paused,
        )));
        tb.sim.own_qp(app, qp);
        let horizon = SimTime::from_micros(200);
        tb.sim.run_until(horizon);
        let s = stats.borrow();
        let bps = s.total_goodput_bps(horizon - SimTime::ZERO);
        // 4 KB reads on a 100 Gbps NIC should comfortably exceed 10 Gbps
        // goodput and stay below the line rate.
        assert!(bps > 10e9, "goodput too low: {bps}");
        assert!(bps < 100e9, "goodput above line rate: {bps}");
        assert_eq!(s.errors, 0);
    }

    #[test]
    fn uli_probe_latency_linear_in_depth() {
        // The paper's §IV-C claim: Lat_total = k·(len_sq+1) + C with an
        // excellent linear fit. Sweep the queue depth and fit.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for depth in [64usize, 96, 128, 192, 256] {
            let mut tb = Testbed::new(DeviceProfile::connectx4(), 1, 5);
            let mr = tb.server_mr(1 << 21, AccessFlags::remote_all());
            let qp = tb.connect_client_with(0, TrafficClass::new(0), FlowId(1), depth);
            let samples = Rc::new(RefCell::new(Vec::new()));
            let app = tb.sim.add_app(Box::new(UliProbe::new(
                qp,
                depth,
                64,
                AddressPattern::Fixed(Target {
                    key: mr.key,
                    addr: mr.addr(0),
                }),
                0x1000,
                Rc::clone(&samples),
            )));
            tb.sim.own_qp(app, qp);
            tb.sim
                .run_until(SimTime::from_micros(100 + 20 * depth as u64));
            let s = samples.borrow();
            assert!(s.len() > 50, "expected many samples, got {}", s.len());
            // Discard warm-up, average the rest.
            let lat: Vec<f64> = s.iter().skip(20).map(|x| x.latency_ns).collect();
            let mean = lat.iter().sum::<f64>() / lat.len() as f64;
            xs.push(depth as f64);
            ys.push(mean);
        }
        let fit = linear_fit(&xs, &ys);
        assert!(
            fit.r > 0.999,
            "latency must be linear in queue depth, r = {}",
            fit.r
        );
        assert!(fit.slope > 0.0);
        // The constant term is the unloaded RTT; it must be small relative
        // to the queueing term at the sweep's depths.
        assert!(
            fit.intercept.abs() < fit.slope * 64.0,
            "C = {} should be dominated by k·len_sq = {}",
            fit.intercept,
            fit.slope * 64.0
        );
    }

    #[test]
    fn bandwidth_sampler_tracks_flow() {
        let mut tb = Testbed::new(DeviceProfile::connectx5(), 1, 9);
        let mr = tb.server_mr(1 << 21, AccessFlags::remote_all());
        let qp = tb.connect_client_with(0, TrafficClass::new(0), FlowId(1), 16);
        let stats = FlowStats::new(false);
        let paused = Rc::new(RefCell::new(false));
        let flow = tb.sim.add_app(Box::new(SaturatingFlow::new(
            vec![qp],
            Opcode::Read,
            1024,
            AddressPattern::Fixed(Target {
                key: mr.key,
                addr: mr.addr(0),
            }),
            0x1000,
            Rc::clone(&stats),
            paused,
        )));
        tb.sim.own_qp(flow, qp);
        let series = Rc::new(RefCell::new(TimeSeries::new()));
        tb.sim.add_app(Box::new(BandwidthSampler::new(
            Rc::clone(&stats),
            SimDuration::from_micros(10),
            Rc::clone(&series),
        )));
        tb.sim.run_until(SimTime::from_micros(200));
        let ts = series.borrow();
        assert!(ts.len() >= 15);
        // Steady-state samples are positive and consistent.
        let vals: Vec<f64> = ts.values().into_iter().skip(3).collect();
        assert!(vals.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn counter_sampler_snapshots_grow_monotonically() {
        let mut tb = Testbed::new(DeviceProfile::connectx5(), 1, 21);
        let mr = tb.server_mr(1 << 21, AccessFlags::remote_all());
        let qp = tb.connect_client_with(0, TrafficClass::new(0), FlowId(1), 8);
        let stats = FlowStats::new(false);
        let paused = Rc::new(RefCell::new(false));
        let flow = tb.sim.add_app(Box::new(SaturatingFlow::new(
            vec![qp],
            Opcode::Read,
            256,
            AddressPattern::Fixed(Target {
                key: mr.key,
                addr: mr.addr(0),
            }),
            0x1000,
            stats,
            paused,
        )));
        tb.sim.own_qp(flow, qp);
        let samples = Rc::new(RefCell::new(Vec::new()));
        let host = tb.clients[0];
        tb.sim.add_app(Box::new(CounterSampler::new(
            host,
            SimDuration::from_micros(10),
            Rc::clone(&samples),
        )));
        tb.sim.run_until(SimTime::from_micros(100));
        let s = samples.borrow();
        assert!(s.len() >= 8, "expected ~10 samples, got {}", s.len());
        for w in s.windows(2) {
            assert!(w[1].0 > w[0].0, "timestamps strictly increase");
            assert!(
                w[1].1.tx_packets >= w[0].1.tx_packets,
                "counters are monotone"
            );
        }
        // The sampled host was actually active.
        assert!(s.last().expect("non-empty").1.tx_packets > 0);
    }

    #[test]
    fn paused_flow_goes_quiet() {
        let mut tb = Testbed::new(DeviceProfile::connectx4(), 1, 13);
        let mr = tb.server_mr(1 << 21, AccessFlags::remote_all());
        let qp = tb.connect_client_with(0, TrafficClass::new(0), FlowId(1), 8);
        let stats = FlowStats::new(false);
        let paused = Rc::new(RefCell::new(false));
        let flow = tb.sim.add_app(Box::new(SaturatingFlow::new(
            vec![qp],
            Opcode::Read,
            512,
            AddressPattern::Fixed(Target {
                key: mr.key,
                addr: mr.addr(0),
            }),
            0x1000,
            Rc::clone(&stats),
            Rc::clone(&paused),
        )));
        tb.sim.own_qp(flow, qp);
        tb.sim.run_until(SimTime::from_micros(50));
        *paused.borrow_mut() = true;
        let at_pause = stats.borrow().completed_msgs;
        tb.sim.run_until(SimTime::from_micros(200));
        let after = stats.borrow().completed_msgs;
        // In-flight requests drain (≤ depth more completions), then quiet.
        assert!(after - at_pause <= 8, "paused flow kept sending");
    }
}
