//! Common experiment scaffolding: one server, N clients, shared PD on the
//! server (the paper's §IV-C setup), convenience MR/QP plumbing.

use rdma_verbs::{
    AccessFlags, ConnectOptions, DeviceProfile, FlowId, HostId, MrHandle, PdId, QpHandle,
    Simulation, TrafficClass,
};

/// A star topology: `clients[i] ⇄ switch ⇄ server`, every host carrying
/// the same RNIC generation.
///
/// # Examples
///
/// ```
/// use ragnar_core::Testbed;
/// use rdma_verbs::{AccessFlags, DeviceProfile};
///
/// let mut tb = Testbed::new(DeviceProfile::connectx5(), 2, 42);
/// let mr = tb.server_mr(2 * 1024 * 1024, AccessFlags::remote_all());
/// let qp = tb.connect_client(0, Default::default());
/// assert_eq!(qp.peer_host, tb.server);
/// assert_eq!(mr.host, tb.server);
/// ```
pub struct Testbed {
    /// The underlying simulation.
    pub sim: Simulation,
    /// The server host (holds the shared data).
    pub server: HostId,
    /// Client hosts.
    pub clients: Vec<HostId>,
    server_pd: PdId,
    client_pds: Vec<PdId>,
}

impl Testbed {
    /// Builds the topology with `n_clients` clients, all using `profile`.
    pub fn new(profile: DeviceProfile, n_clients: usize, seed: u64) -> Self {
        let mut sim = Simulation::new(seed);
        let server = sim.add_host(profile.clone());
        let server_pd = sim.alloc_pd(server);
        let mut clients = Vec::with_capacity(n_clients);
        let mut client_pds = Vec::with_capacity(n_clients);
        for _ in 0..n_clients {
            let c = sim.add_host(profile.clone());
            client_pds.push(sim.alloc_pd(c));
            clients.push(c);
        }
        Testbed {
            sim,
            server,
            clients,
            server_pd,
            client_pds,
        }
    }

    /// The server's protection domain (all server MRs share it, as in the
    /// paper's setup).
    pub fn server_pd(&self) -> PdId {
        self.server_pd
    }

    /// Registers a server-side MR (2 MiB huge-page aligned).
    pub fn server_mr(&mut self, len: u64, access: AccessFlags) -> MrHandle {
        self.sim
            .register_mr(self.server, self.server_pd, len, access)
    }

    /// Registers an MR on a client (for local buffers).
    pub fn client_mr(&mut self, client: usize, len: u64, access: AccessFlags) -> MrHandle {
        self.sim
            .register_mr(self.clients[client], self.client_pds[client], len, access)
    }

    /// Connects client `client` to the server; returns the client-side
    /// endpoint.
    pub fn connect_client(&mut self, client: usize, opts: ConnectOptions) -> QpHandle {
        let (cq, _sq) = self.sim.connect(
            self.clients[client],
            self.client_pds[client],
            self.server,
            self.server_pd,
            opts,
        );
        cq
    }

    /// Connects the server to client `client` (for "reverse" flows where
    /// the server is the requester, e.g. reverse RDMA Reads in Fig. 4);
    /// returns the server-side endpoint.
    pub fn connect_server_to_client(&mut self, client: usize, opts: ConnectOptions) -> QpHandle {
        let (sq, _cq) = self.sim.connect(
            self.server,
            self.server_pd,
            self.clients[client],
            self.client_pds[client],
            opts,
        );
        sq
    }

    /// Connects client `client` with explicit TC/flow/queue depth.
    pub fn connect_client_with(
        &mut self,
        client: usize,
        tc: TrafficClass,
        flow: FlowId,
        max_send_queue: usize,
    ) -> QpHandle {
        self.connect_client(
            client,
            ConnectOptions {
                tc,
                flow,
                max_send_queue,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_verbs::WorkRequest;
    use sim_core::SimTime;

    #[test]
    fn clients_reach_the_server() {
        let mut tb = Testbed::new(DeviceProfile::connectx4(), 2, 1);
        let mr = tb.server_mr(1 << 21, AccessFlags::remote_all());
        tb.sim.write_memory(tb.server, mr.addr(0), b"shared");
        let q0 = tb.connect_client(0, Default::default());
        let q1 = tb.connect_client(1, Default::default());
        tb.sim
            .post_send(q0, WorkRequest::read(1, 0x1000, mr.addr(0), mr.key, 6))
            .expect("post c0");
        tb.sim
            .post_send(q1, WorkRequest::read(2, 0x1000, mr.addr(0), mr.key, 6))
            .expect("post c1");
        tb.sim.run_until(SimTime::from_millis(1));
        let done = tb.sim.take_completions();
        assert_eq!(done.len(), 2);
        assert!(done.iter().all(|(_, c)| c.status.is_ok()));
    }

    #[test]
    fn distinct_pds_per_host() {
        let tb = Testbed::new(DeviceProfile::connectx5(), 3, 2);
        assert_eq!(tb.clients.len(), 3);
        let mut pds = tb.client_pds.clone();
        pds.push(tb.server_pd);
        pds.sort_by_key(|p| p.0);
        pds.dedup();
        assert_eq!(pds.len(), 4, "every host gets its own PD");
    }
}
