//! # ragnar-core — the Ragnar attacks (DAC 2025)
//!
//! The paper's primary contribution, reproduced over the simulated RNIC
//! substrate:
//!
//! * [`re`] — the §IV reverse-engineering suite: the Fig.-4 contention
//!   sweep across traffic granularities, ULI linearity validation, and
//!   the Fig. 5–8 offset-effect microbenchmarks.
//! * [`covert`] — the §V covert channels: the Grain-I/II priority channel,
//!   the Grain-III inter-MR channel and the Grain-IV intra-MR channel,
//!   with the Table-V evaluation (bandwidth, error rate, effective
//!   bandwidth).
//! * [`side`] — the §VI side channels: shuffle/join fingerprinting of a
//!   distributed database (Algorithm 1, Fig. 12) and address snooping on
//!   disaggregated memory (Fig. 13).
//! * [`measure`] — the shared measurement drivers (saturating flows, the
//!   ULI probe, bandwidth samplers).
//! * [`Testbed`] — the one-server/N-client experiment topology.

#![warn(missing_docs)]

pub mod covert;
pub mod measure;
pub mod re;
pub mod side;
mod testbed;

pub use measure::{
    goodput_bps, AddressPattern, BandwidthSampler, CounterSampler, FlowStats, SaturatingFlow,
    Target, UliProbe, UliSample,
};
pub use testbed::Testbed;
