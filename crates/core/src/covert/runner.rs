//! Shared runner for the ULI-observing covert channels (inter-MR and
//! intra-MR): a modulating sender on one client, a ULI probe on another,
//! window-averaged threshold decoding at the receiver.

use crate::covert::{count_errors, threshold_decode, BitModes, ChannelReport, ModulatingSender};
use crate::measure::{AddressPattern, CounterSampler, Target, UliProbe, UliSample};
use crate::testbed::Testbed;
use rdma_verbs::{DeviceKind, DeviceProfile, FlowId, MrHandle, Opcode, TrafficClass};
use rnic_model::CounterSnapshot;
use sim_core::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Parameters of a ULI-based covert channel run.
#[derive(Debug, Clone)]
pub struct UliChannelConfig {
    /// Sender's max send queue (the paper's footnotes 10–11).
    pub tx_depth: usize,
    /// Sender QP count (the paper's §V-C setup uses 2 QPs).
    pub tx_qp_count: usize,
    /// Sender's read size.
    pub tx_msg_len: u64,
    /// Receiver probe's max send queue.
    pub rx_depth: usize,
    /// Receiver probe's read size.
    pub rx_msg_len: u64,
    /// Bit period.
    pub bit_period: SimDuration,
    /// Decode polarity: `true` if a high receiver level means a 1-bit.
    pub high_is_one: bool,
    /// Extra Gaussian latency noise (σ, ns) injected into the server's
    /// translation unit — the §VII mitigation knob. Zero disables.
    pub mitigation_noise_ns: u64,
    /// When set, a third (innocent) client keeps a saturating read flow
    /// of this size against its own server MR — the robustness scenario:
    /// covert channels must survive bystander traffic.
    pub background_traffic_len: Option<u64>,
    /// Optional fault plan installed on the fabric (robustness runs:
    /// channels must degrade, not wedge, under injected faults).
    pub fault_plan: Option<rdma_verbs::FaultPlan>,
    /// Seed.
    pub seed: u64,
}

/// Result of a ULI-channel run.
#[derive(Debug, Clone)]
pub struct UliRun {
    /// Channel evaluation.
    pub report: ChannelReport,
    /// Raw receiver ULI samples (for Fig. 10/11 folding).
    pub rx_samples: Vec<UliSample>,
    /// Transmission start time (bit 0 boundary).
    pub start: SimTime,
    /// Periodic counter snapshots of the *sender's* NIC — what a
    /// HARMONIC-style monitor observes (Grain-I/II/III).
    pub tx_counter_samples: Vec<(SimTime, CounterSnapshot)>,
}

/// Builds MR layout + apps and runs the channel. `modes_of` receives the
/// three server MRs `(mr_a, mr_b, mr_rx)` and produces the sender's bit
/// modes.
pub(crate) fn run_uli_channel(
    kind: DeviceKind,
    bits: &[bool],
    cfg: &UliChannelConfig,
    modes_of: impl FnOnce(&MrHandle, &MrHandle) -> BitModes,
) -> UliRun {
    let profile = DeviceProfile::preset(kind);
    let n_clients = if cfg.background_traffic_len.is_some() {
        3
    } else {
        2
    };
    let mut tb = Testbed::new(profile, n_clients, cfg.seed);
    if let Some(plan) = &cfg.fault_plan {
        tb.sim.install_fault_plan(plan);
    }
    if cfg.mitigation_noise_ns > 0 {
        let server = tb.server;
        tb.sim
            .nic_mut(server)
            .tpu_mut()
            .set_noise_sigma(SimDuration::from_nanos(cfg.mitigation_noise_ns));
    }
    let mr_a = tb.server_mr(1 << 21, rdma_verbs::AccessFlags::remote_all());
    let mr_b = tb.server_mr(1 << 21, rdma_verbs::AccessFlags::remote_all());
    let mr_rx = tb.server_mr(1 << 21, rdma_verbs::AccessFlags::remote_all());

    // Sender: client 0, spread over the configured QP count.
    let tx_qps: Vec<_> = (0..cfg.tx_qp_count.max(1))
        .map(|_| tb.connect_client_with(0, TrafficClass::new(0), FlowId(1), cfg.tx_depth))
        .collect();
    // Transmission starts after a settling lead-in.
    let start = SimTime::from_micros(30);
    let modes = modes_of(&mr_a, &mr_b);
    let sender = tb.sim.add_app(Box::new(ModulatingSender::new(
        tx_qps.clone(),
        Opcode::Read,
        modes,
        bits.to_vec(),
        cfg.bit_period,
        start,
    )));
    for qp in tx_qps {
        tb.sim.own_qp(sender, qp);
    }

    // Receiver: client 1, probing its own MR at offset 0.
    let rx_qp = tb.connect_client_with(1, TrafficClass::new(0), FlowId(2), cfg.rx_depth);
    let samples = Rc::new(RefCell::new(Vec::new()));
    let probe = tb.sim.add_app(Box::new(UliProbe::new(
        rx_qp,
        cfg.rx_depth,
        cfg.rx_msg_len,
        AddressPattern::Fixed(Target {
            key: mr_rx.key,
            addr: mr_rx.addr(0),
        }),
        0x2000,
        Rc::clone(&samples),
    )));
    tb.sim.own_qp(probe, rx_qp);

    // Optional bystander: client 2 with its own MR and a steady flow.
    if let Some(len) = cfg.background_traffic_len {
        let mr_bg = tb.server_mr(4 << 20, rdma_verbs::AccessFlags::remote_all());
        let bg_qp = tb.connect_client_with(2, TrafficClass::new(0), FlowId(3), 16);
        let stats = crate::measure::FlowStats::new(false);
        let paused = Rc::new(RefCell::new(false));
        let bg = tb.sim.add_app(Box::new(crate::measure::SaturatingFlow::new(
            vec![bg_qp],
            Opcode::Read,
            len,
            AddressPattern::Stride {
                key: mr_bg.key,
                base: mr_bg.base_va,
                stride: 4160,
                count: 900,
            },
            0x9000,
            stats,
            paused,
        )));
        tb.sim.own_qp(bg, bg_qp);
    }

    // HARMONIC's view: sample the sender-side NIC counters every few
    // bit periods.
    let tx_counters = Rc::new(RefCell::new(Vec::new()));
    tb.sim.add_app(Box::new(CounterSampler::new(
        tb.clients[0],
        cfg.bit_period * 4,
        Rc::clone(&tx_counters),
    )));

    let end = start + cfg.bit_period * bits.len() as u64 + SimDuration::from_micros(5);
    tb.sim.run_until(end);

    let rx_samples: Vec<UliSample> = samples.borrow().clone();
    let tx_samples: Vec<(SimTime, CounterSnapshot)> = tx_counters.borrow().clone();
    // Window means per bit. The first 30 % of each bit period is skipped:
    // the shared queue state needs to settle after the sender switches
    // modes (inter-symbol interference).
    let mut levels = Vec::with_capacity(bits.len());
    for i in 0..bits.len() {
        let lo = start + cfg.bit_period * i as u64 + cfg.bit_period.mul_f64(0.3);
        let hi = start + cfg.bit_period * (i as u64 + 1);
        let window: Vec<f64> = rx_samples
            .iter()
            .filter(|s| s.at >= lo && s.at < hi)
            .map(|s| s.uli_ns)
            .collect();
        let level = if window.is_empty() {
            f64::NAN
        } else {
            window.iter().sum::<f64>() / window.len() as f64
        };
        levels.push(level);
    }
    // Empty windows decode as the previous level (rare; keeps lengths
    // aligned).
    let mut filled = levels.clone();
    for i in 0..filled.len() {
        if filled[i].is_nan() {
            filled[i] = if i > 0 { filled[i - 1] } else { 0.0 };
        }
    }
    let decoded = threshold_decode(&filled, cfg.high_is_one);
    let errors = count_errors(bits, &decoded);
    UliRun {
        report: ChannelReport {
            device: kind,
            bits_sent: bits.len(),
            bit_errors: errors,
            raw_bandwidth_bps: 1.0 / cfg.bit_period.as_secs_f64(),
            levels: filled,
            decoded,
        },
        rx_samples,
        start,
        tx_counter_samples: tx_samples,
    }
}
