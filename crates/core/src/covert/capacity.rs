//! Channel-capacity sweeps: the bit-period/error trade-off behind the
//! paper's "best parameter combinations" (footnotes 10–11).
//!
//! Shortening the bit period raises the raw bandwidth but starves the
//! receiver of samples per bit, raising the error rate; the *effective*
//! bandwidth `BW·(1−H₂(p))` peaks at an interior optimum. This module
//! sweeps the period and reports the curve and its optimum — exactly the
//! calibration the paper's authors performed per NIC.

use crate::covert::runner::UliChannelConfig;
use crate::covert::{inter_mr, intra_mr, random_bits};
use rdma_verbs::DeviceKind;
use sim_core::SimDuration;

/// One operating point of the capacity sweep.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct CapacityPoint {
    /// Bit period.
    pub bit_period_ns: u64,
    /// Raw bandwidth (1 / period), bits per second.
    pub raw_bps: f64,
    /// Measured bit error rate.
    pub error_rate: f64,
    /// Effective bandwidth `raw · (1 − H₂(p))`.
    pub effective_bps: f64,
}

/// Which ULI channel to sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UliChannel {
    /// The Grain-III inter-MR channel.
    InterMr,
    /// The Grain-IV intra-MR channel.
    IntraMr,
}

/// Sweeps the bit period of a ULI channel on `kind` and returns the
/// capacity curve.
pub fn capacity_sweep(
    kind: DeviceKind,
    channel: UliChannel,
    periods_ns: &[u64],
    bits_per_point: usize,
) -> Vec<CapacityPoint> {
    let payload = random_bits(bits_per_point, 0xCAFE);
    periods_ns
        .iter()
        .map(|&p| {
            let base = match channel {
                UliChannel::InterMr => inter_mr::default_config(kind),
                UliChannel::IntraMr => intra_mr::default_config(kind),
            };
            let cfg = UliChannelConfig {
                bit_period: SimDuration::from_nanos(p),
                ..base
            };
            let run = match channel {
                UliChannel::InterMr => inter_mr::run(kind, &payload, &cfg),
                UliChannel::IntraMr => intra_mr::run(kind, &payload, &cfg),
            };
            CapacityPoint {
                bit_period_ns: p,
                raw_bps: run.report.raw_bandwidth_bps,
                error_rate: run.report.error_rate(),
                effective_bps: run.report.effective_bandwidth_bps(),
            }
        })
        .collect()
}

/// The sweep point with the highest effective bandwidth.
///
/// # Panics
///
/// Panics if `points` is empty.
pub fn best_operating_point(points: &[CapacityPoint]) -> CapacityPoint {
    *points
        .iter()
        .max_by(|a, b| {
            a.effective_bps
                .partial_cmp(&b.effective_bps)
                .expect("finite bandwidths")
        })
        .expect("non-empty sweep")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shorter_periods_raise_raw_bandwidth_and_errors() {
        let points = capacity_sweep(
            DeviceKind::ConnectX4,
            UliChannel::InterMr,
            &[8_000, 31_400, 120_000],
            64,
        );
        assert!(points[0].raw_bps > points[1].raw_bps);
        assert!(points[1].raw_bps > points[2].raw_bps);
        // The over-clocked point must be noticeably worse in error rate
        // than the generous one.
        assert!(
            points[0].error_rate >= points[2].error_rate,
            "faster clocking cannot reduce errors: {points:?}"
        );
        // The calibrated Table-V period must be usable.
        assert!(points[1].error_rate < 0.1);
    }

    #[test]
    fn best_point_maximizes_effective_bandwidth() {
        let points = vec![
            CapacityPoint {
                bit_period_ns: 10_000,
                raw_bps: 100_000.0,
                error_rate: 0.4,
                effective_bps: 2_900.0,
            },
            CapacityPoint {
                bit_period_ns: 30_000,
                raw_bps: 33_000.0,
                error_rate: 0.02,
                effective_bps: 28_300.0,
            },
        ];
        assert_eq!(best_operating_point(&points).bit_period_ns, 30_000);
    }
}
