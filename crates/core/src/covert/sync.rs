//! Clock recovery for the covert receiver.
//!
//! The paper's channels assume the sender and receiver share bit
//! boundaries. A real covert receiver only knows the nominal bit *period*
//! — the phase must be recovered from the signal itself. This module
//! estimates the phase by maximizing the between-window separation of
//! the receiver's samples, then decodes without any shared clock.

use crate::covert::threshold_decode;
use sim_core::{SimDuration, SimTime};

/// Result of phase recovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveredClock {
    /// Estimated offset of the first bit boundary after `t0`.
    pub phase: SimDuration,
    /// Separation score of the chosen phase (higher = cleaner lock).
    pub score: f64,
}

/// Estimates the bit phase of `(time, value)` samples with a known bit
/// period, by scanning `candidates` phase offsets and picking the one
/// whose per-window means spread the most (a modulated signal has
/// bimodal window means only when windows align with bits).
///
/// # Panics
///
/// Panics if `samples` is empty, `period` is zero, or `candidates` is 0.
pub fn recover_phase(
    samples: &[(SimTime, f64)],
    period: SimDuration,
    candidates: usize,
) -> RecoveredClock {
    assert!(!samples.is_empty(), "no samples");
    assert!(!period.is_zero() && candidates > 0, "degenerate search");
    let t0 = samples[0].0;
    let mut best = RecoveredClock {
        phase: SimDuration::ZERO,
        score: f64::NEG_INFINITY,
    };
    for c in 0..candidates {
        let phase = SimDuration::from_picos(period.as_picos() * c as u64 / candidates as u64);
        // Purity score: aligned windows contain samples of a single bit,
        // so their *within-window* variance collapses to the jitter
        // floor; misaligned windows straddle edges and mix levels.
        let score = -mean_within_window_variance(samples, t0 + phase, period);
        if score > best.score {
            best = RecoveredClock { phase, score };
        }
    }
    assert!(
        best.score.is_finite(),
        "phase recovery found no usable windows"
    );
    best
}

/// Mean of the per-window sample variances (windows with <2 samples are
/// skipped).
fn mean_within_window_variance(
    samples: &[(SimTime, f64)],
    start: SimTime,
    period: SimDuration,
) -> f64 {
    use std::collections::BTreeMap;
    let mut windows: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    for &(t, v) in samples {
        if t < start {
            continue;
        }
        windows
            .entry((t - start).as_picos() / period.as_picos())
            .or_default()
            .push(v);
    }
    let mut acc = 0.0;
    let mut n = 0usize;
    for vals in windows.values() {
        if vals.len() < 2 {
            continue;
        }
        let m = vals.iter().sum::<f64>() / vals.len() as f64;
        acc += vals.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / vals.len() as f64;
        n += 1;
    }
    if n == 0 {
        f64::INFINITY
    } else {
        acc / n as f64
    }
}

/// Per-window means from `start`, one window per `period`. Windows with
/// no samples inherit the previous level.
pub fn window_means(samples: &[(SimTime, f64)], start: SimTime, period: SimDuration) -> Vec<f64> {
    let end = samples.last().map(|&(t, _)| t).unwrap_or(start);
    if end <= start {
        return Vec::new();
    }
    let n = ((end - start).as_picos() / period.as_picos()) as usize;
    let mut sums = vec![0.0; n];
    let mut counts = vec![0usize; n];
    for &(t, v) in samples {
        if t < start {
            continue;
        }
        let idx = ((t - start).as_picos() / period.as_picos()) as usize;
        if idx < n {
            sums[idx] += v;
            counts[idx] += 1;
        }
    }
    let mut out = Vec::with_capacity(n);
    let mut last = 0.0;
    for i in 0..n {
        if counts[i] > 0 {
            last = sums[i] / counts[i] as f64;
        }
        out.push(last);
    }
    out
}

/// Fully asynchronous decode: recovers the phase, then threshold-decodes
/// every complete window. Returns `(bits, clock)`. The caller aligns the
/// result to the payload with a known preamble.
pub fn async_decode(
    samples: &[(SimTime, f64)],
    period: SimDuration,
    high_is_one: bool,
) -> (Vec<bool>, RecoveredClock) {
    let clock = recover_phase(samples, period, 32);
    let t0 = samples[0].0;
    let levels = window_means(samples, t0 + clock.phase, period);
    (threshold_decode(&levels, high_is_one), clock)
}

/// Locates `preamble` in `decoded` and returns the payload bits that
/// follow, or `None` if the preamble never appears.
pub fn strip_preamble(decoded: &[bool], preamble: &[bool]) -> Option<Vec<bool>> {
    if preamble.is_empty() || decoded.len() < preamble.len() {
        return None;
    }
    (0..=decoded.len() - preamble.len())
        .find(|&i| &decoded[i..i + preamble.len()] == preamble)
        .map(|i| decoded[i + preamble.len()..].to_vec())
}

/// Like [`strip_preamble`], but tolerant of a corrupted or clipped
/// preamble: scans every alignment — including ones where the head of
/// the preamble fell off the front of the capture — and scores each as
/// matching bits minus mismatching bits over the overlap (clipped bits
/// score zero). The earliest alignment with the highest score wins if
/// its score reaches `min_score`; random data scores about zero, so a
/// threshold a little under the preamble length keeps false locks
/// unlikely while riding out single-bit decode errors.
pub fn strip_preamble_fuzzy(
    decoded: &[bool],
    preamble: &[bool],
    min_score: usize,
) -> Option<Vec<bool>> {
    if preamble.is_empty() || decoded.is_empty() {
        return None;
    }
    let len = preamble.len() as i64;
    let n = decoded.len() as i64;
    let mut best: Option<(i64, i64)> = None; // (score, offset)
    for o in -(len - 1)..n {
        let mut score = 0i64;
        for (i, &p) in preamble.iter().enumerate() {
            let j = o + i as i64;
            if (0..n).contains(&j) {
                score += if decoded[j as usize] == p { 1 } else { -1 };
            }
        }
        if best.is_none_or(|(s, _)| score > s) {
            best = Some((score, o));
        }
    }
    let (score, o) = best?;
    if score < min_score as i64 {
        return None;
    }
    let start = (o + len).clamp(0, n) as usize;
    Some(decoded[start..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(
        bits: &[bool],
        period_ns: u64,
        phase_ns: u64,
        samples_per_bit: u64,
    ) -> Vec<(SimTime, f64)> {
        let mut out = Vec::new();
        for (i, &b) in bits.iter().enumerate() {
            for s in 0..samples_per_bit {
                let t = phase_ns + i as u64 * period_ns + s * period_ns / samples_per_bit + 1; // strictly inside the bit
                let v = if b { 100.0 } else { 40.0 } + (s % 3) as f64;
                out.push((SimTime::from_nanos(t), v));
            }
        }
        out
    }

    #[test]
    fn fuzzy_preamble_survives_one_bit_error() {
        let preamble = [true, true, true, false, false, true, false];
        let payload = [true, false, false, true, true, false];
        let mut framed: Vec<bool> = preamble.to_vec();
        framed.extend(payload);
        framed[3] = true; // corrupt one preamble bit
        assert_eq!(strip_preamble(&framed, &preamble), None);
        assert_eq!(
            strip_preamble_fuzzy(&framed, &preamble, 5),
            Some(payload.to_vec())
        );
    }

    #[test]
    fn fuzzy_preamble_survives_clipped_head() {
        let preamble = [true, true, true, false, false, true, false];
        let payload = [false, true, true, false, true];
        let mut clipped: Vec<bool> = preamble[1..].to_vec(); // first window lost
        clipped.extend(payload);
        assert_eq!(
            strip_preamble_fuzzy(&clipped, &preamble, 5),
            Some(payload.to_vec())
        );
    }

    #[test]
    fn fuzzy_preamble_rejects_noise() {
        let preamble = [true, true, true, false, false, true, false];
        let silence = vec![false; 32];
        assert_eq!(strip_preamble_fuzzy(&silence, &preamble, 5), None);
        assert_eq!(strip_preamble_fuzzy(&[], &preamble, 1), None);
        assert_eq!(strip_preamble_fuzzy(&silence, &[], 1), None);
    }

    #[test]
    fn recovers_phase_of_synthetic_signal() {
        let bits: Vec<bool> = (0..64).map(|i| (i / 3) % 2 == 0).collect();
        let period = SimDuration::from_nanos(1000);
        let samples = synth(&bits, 1000, 437, 8);
        let clock = recover_phase(&samples, period, 50);
        // The first sample sits 437+1 ns into nowhere; the next boundary
        // is at 1000·k + 437. Relative to samples[0], phase ≈ period −
        // (within-bit offset of sample 0) = 1000 − 1 ≈ 999 or ≈ 0 —
        // aligned windows start at a bit boundary modulo the period.
        let got = clock.phase.as_nanos_f64();
        let dist = (got % 1000.0).min(1000.0 - (got % 1000.0));
        assert!(
            dist < 80.0 || (got - 999.0).abs() < 80.0,
            "recovered phase {got} not on a boundary"
        );
    }

    #[test]
    fn async_decode_round_trips_with_preamble() {
        let preamble = [true, false, true, false, true, false, true, false];
        let payload: Vec<bool> = (0..48).map(|i| i % 5 < 2).collect();
        let mut bits = preamble.to_vec();
        bits.extend(&payload);
        let samples = synth(&bits, 1000, 731, 10);
        let (decoded, clock) = async_decode(&samples, SimDuration::from_nanos(1000), true);
        assert!(clock.score.is_finite());
        let got = strip_preamble(&decoded, &preamble).expect("preamble found");
        // Clock recovery may clip the trailing partial window.
        let n = got.len().min(payload.len());
        assert!(n >= payload.len() - 1, "payload mostly recovered");
        assert_eq!(&got[..n], &payload[..n]);
    }

    #[test]
    fn strip_preamble_absent() {
        let decoded = vec![false; 20];
        let preamble = vec![true, false, true];
        assert_eq!(strip_preamble(&decoded, &preamble), None);
        assert_eq!(strip_preamble(&decoded, &[]), None);
    }

    #[test]
    fn misaligned_windows_score_lower() {
        let bits: Vec<bool> = (0..64).map(|i| i % 2 == 0).collect();
        let period = SimDuration::from_nanos(1000);
        let samples = synth(&bits, 1000, 0, 10);
        let aligned = window_means(&samples, SimTime::from_nanos(0), period);
        let shifted = window_means(&samples, SimTime::from_nanos(500), period);
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
        };
        assert!(
            var(&aligned) > 2.0 * var(&shifted),
            "alignment must maximize separation: {} vs {}",
            var(&aligned),
            var(&shifted)
        );
    }
}
