//! §V — covert-channel Ragnar attacks.
//!
//! Three channels at increasing granularity (Table V):
//!
//! * [`priority`] — Grain-I/II: the sender modulates its flow's message
//!   size; the receiver watches its own bandwidth (Fig. 9). ~1 bps, 0 %
//!   error.
//! * [`inter_mr`] — Grain-III: the sender encodes bits by accessing the
//!   same vs. different MRs; the receiver measures ULI (Fig. 10/11).
//!   Tens of Kbps.
//! * [`intra_mr`] — Grain-IV: the sender switches address *offsets*
//!   inside one MR; maximal stealthiness since nothing but the offset
//!   changes.
//!
//! The shared machinery lives here: bit schedules, the modulating sender,
//! window decoding, error rates and the effective-bandwidth formula.

pub mod capacity;
pub mod inter_mr;
pub mod intra_mr;
pub mod priority;
mod runner;
pub mod sync;

pub use runner::{UliChannelConfig, UliRun};

use crate::measure::AddressPattern;
use rdma_verbs::{App, Cqe, Ctx, DeviceKind, HostId, Opcode, QpHandle, VerbsError, WorkRequest};
use sim_core::{SimDuration, SimTime};

/// Binary entropy `H₂(p)` in bits.
///
/// # Examples
///
/// ```
/// let h = ragnar_core::covert::binary_entropy(0.5);
/// assert!((h - 1.0).abs() < 1e-12);
/// assert_eq!(ragnar_core::covert::binary_entropy(0.0), 0.0);
/// ```
pub fn binary_entropy(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        return 0.0;
    }
    -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
}

/// Deterministic pseudo-random payload bits for channel evaluation.
pub fn random_bits(n: usize, seed: u64) -> Vec<bool> {
    let mut rng = sim_core::SimRng::derive(seed, "covert-bits");
    (0..n).map(|_| rng.chance(0.5)).collect()
}

/// The 16-bit pattern transmitted in Fig. 9.
pub const FIG9_BITS: &str = "1101111101010010";

/// Parses a bit string like `"1101"`.
///
/// # Panics
///
/// Panics on characters other than `0`/`1`.
pub fn parse_bits(s: &str) -> Vec<bool> {
    s.chars()
        .map(|c| match c {
            '0' => false,
            '1' => true,
            other => panic!("invalid bit character {other:?}"),
        })
        .collect()
}

/// Evaluation of one covert-channel run (one column of Table V).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ChannelReport {
    /// Device the channel ran on.
    pub device: DeviceKind,
    /// Bits transmitted (excluding preamble).
    pub bits_sent: usize,
    /// Bits decoded incorrectly.
    pub bit_errors: usize,
    /// Raw channel bandwidth in bits per second (1 / bit period).
    pub raw_bandwidth_bps: f64,
    /// Per-bit receiver levels (the observable Y; for plotting).
    pub levels: Vec<f64>,
    /// Decoded bits.
    pub decoded: Vec<bool>,
}

impl ChannelReport {
    /// Bit error rate.
    pub fn error_rate(&self) -> f64 {
        if self.bits_sent == 0 {
            0.0
        } else {
            self.bit_errors as f64 / self.bits_sent as f64
        }
    }

    /// Effective bandwidth: raw bandwidth times the binary-symmetric
    /// channel capacity `1 − H₂(p)` — this reproduces Table V's
    /// "Effective Bandwidth" row (e.g. CX-4 inter-MR: 31.8 Kbps at
    /// 5.92 % error → 21.5 Kbps).
    pub fn effective_bandwidth_bps(&self) -> f64 {
        self.raw_bandwidth_bps * (1.0 - binary_entropy(self.error_rate()))
    }
}

/// Threshold-decodes per-bit levels: level above threshold ⇒ `high_is_one`
/// decides the bit. The threshold is the midpoint of the 20th/80th level
/// percentiles, which tolerates skewed bit mixes.
pub fn threshold_decode(levels: &[f64], high_is_one: bool) -> Vec<bool> {
    assert!(!levels.is_empty(), "no levels to decode");
    let mut sorted = levels.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN level"));
    let lo = sim_core::percentile_sorted(&sorted, 0.2);
    let hi = sim_core::percentile_sorted(&sorted, 0.8);
    let threshold = (lo + hi) / 2.0;
    levels
        .iter()
        .map(|&v| (v > threshold) == high_is_one)
        .collect()
}

/// Counts decode errors against the sent bits.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn count_errors(sent: &[bool], decoded: &[bool]) -> usize {
    assert_eq!(sent.len(), decoded.len(), "bit count mismatch");
    sent.iter().zip(decoded).filter(|(a, b)| a != b).count()
}

/// Folds `(time, value)` samples over a repeating period into `buckets`
/// phase bins — the presentation of Fig. 10/11, where the X axis is one
/// folded period of two covert bits.
///
/// # Panics
///
/// Panics if `buckets` is zero or `period` is zero.
pub fn fold_by_phase(
    samples: &[(SimTime, f64)],
    start: SimTime,
    period: SimDuration,
    buckets: usize,
) -> Vec<f64> {
    assert!(buckets > 0 && !period.is_zero(), "degenerate folding");
    let mut sums = vec![0.0; buckets];
    let mut counts = vec![0usize; buckets];
    for &(t, v) in samples {
        if t < start {
            continue;
        }
        let phase = (t - start).as_picos() % period.as_picos();
        let b = (phase as u128 * buckets as u128 / period.as_picos() as u128) as usize;
        let b = b.min(buckets - 1);
        sums[b] += v;
        counts[b] += 1;
    }
    sums.iter()
        .zip(&counts)
        .map(|(&s, &c)| if c == 0 { f64::NAN } else { s / c as f64 })
        .collect()
}

/// How the sender expresses one covert bit.
#[derive(Debug, Clone)]
pub struct BitModes {
    /// Pattern + message length used for a `0` bit.
    pub zero: (AddressPattern, u64),
    /// Pattern + message length used for a `1` bit.
    pub one: (AddressPattern, u64),
}

/// The covert transmitter: a closed-loop flow whose address pattern and
/// message size switch at every bit boundary of the schedule.
pub struct ModulatingSender {
    qps: Vec<QpHandle>,
    opcode: Opcode,
    modes: BitModes,
    bits: Vec<bool>,
    bit_period: SimDuration,
    start: SimTime,
    current: usize,
    seq: u64,
    local_addr: u64,
    done: bool,
}

impl ModulatingSender {
    /// Creates the sender; transmission begins at `start` (it idles
    /// before that).
    ///
    /// # Panics
    ///
    /// Panics if `qps` or `bits` is empty, or the opcode is not
    /// Read/Write.
    pub fn new(
        qps: Vec<QpHandle>,
        opcode: Opcode,
        modes: BitModes,
        bits: Vec<bool>,
        bit_period: SimDuration,
        start: SimTime,
    ) -> Self {
        assert!(
            !qps.is_empty() && !bits.is_empty(),
            "sender needs QPs and bits"
        );
        assert!(
            matches!(opcode, Opcode::Read | Opcode::Write),
            "covert sender uses reads or writes"
        );
        ModulatingSender {
            qps,
            opcode,
            modes,
            bits,
            bit_period,
            start,
            current: 0,
            seq: 0,
            local_addr: 0x4000,
            done: false,
        }
    }

    fn mode(&self) -> (AddressPattern, u64) {
        let idx = self.current.min(self.bits.len() - 1);
        if self.bits[idx] {
            self.modes.one.clone()
        } else {
            self.modes.zero.clone()
        }
    }

    fn fill(&mut self, ctx: &mut Ctx<'_>) {
        if self.done || ctx.now() < self.start {
            return;
        }
        let qps = self.qps.clone();
        for qp in qps {
            loop {
                let (pattern, len) = self.mode();
                let t = pattern.target(self.seq);
                self.seq += 1;
                let wr = match self.opcode {
                    Opcode::Read => {
                        WorkRequest::read(self.seq, self.local_addr, t.addr, t.key, len)
                    }
                    _ => WorkRequest::write(self.seq, self.local_addr, t.addr, t.key, len),
                };
                match ctx.post_send(qp, wr) {
                    Ok(()) => {}
                    Err(VerbsError::SendQueueFull) | Err(VerbsError::QpInError) => {
                        self.seq -= 1;
                        break;
                    }
                    Err(e) => panic!("unexpected post error: {e}"),
                }
            }
        }
    }
}

impl App for ModulatingSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Wake at the schedule start and at every bit boundary.
        let now = ctx.now();
        let delay = self.start.saturating_since(now);
        ctx.set_timer(delay, 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        self.current = token as usize;
        if self.current >= self.bits.len() {
            self.done = true;
            return;
        }
        self.fill(ctx);
        ctx.set_timer(self.bit_period, token + 1);
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_>, _host: HostId, _cqe: Cqe) {
        self.fill(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_properties() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        // Table V check: CX-4 inter-MR, 31.8 Kbps at 5.92 % → 21.5 Kbps.
        let eff = 31.8e3 * (1.0 - binary_entropy(0.0592));
        assert!((eff - 21.5e3).abs() < 0.4e3, "effective BW formula: {eff}");
    }

    #[test]
    fn bit_parsing_round_trip() {
        let bits = parse_bits(FIG9_BITS);
        assert_eq!(bits.len(), 16);
        assert!(bits[0] && bits[1] && !bits[2]);
    }

    #[test]
    fn threshold_decoding() {
        let levels = vec![1.0, 9.0, 1.2, 8.8, 0.9, 9.1];
        let decoded = threshold_decode(&levels, true);
        assert_eq!(decoded, vec![false, true, false, true, false, true]);
        let inverted = threshold_decode(&levels, false);
        assert_eq!(inverted, vec![true, false, true, false, true, false]);
    }

    #[test]
    fn error_counting() {
        let sent = vec![true, false, true];
        let decoded = vec![true, true, true];
        assert_eq!(count_errors(&sent, &decoded), 1);
    }

    #[test]
    fn folding_reconstructs_square_wave() {
        // Samples alternate low/high every 100 ns with period 200 ns.
        let mut samples = Vec::new();
        for i in 0..400u64 {
            let t = SimTime::from_nanos(i * 10);
            let phase = (i * 10) % 200;
            let v = if phase < 100 { 1.0 } else { 5.0 };
            samples.push((t, v));
        }
        let folded = fold_by_phase(&samples, SimTime::ZERO, SimDuration::from_nanos(200), 10);
        assert!(folded[..5].iter().all(|&v| (v - 1.0).abs() < 1e-9));
        assert!(folded[5..].iter().all(|&v| (v - 5.0).abs() < 1e-9));
    }

    #[test]
    fn random_bits_deterministic() {
        assert_eq!(random_bits(64, 1), random_bits(64, 1));
        assert_ne!(random_bits(64, 1), random_bits(64, 2));
    }
}
