//! §V-D — the Grain-IV intra-MR address-based channel.
//!
//! For maximal stealthiness the sender keeps *everything* constant except
//! the address offset within one MR: bit 0 reads offset 0 (which aliases
//! the receiver's TPU bank and inflates its ULI), bit 1 reads offset
//! 255 B (257 B on CX-6) — a different bank, so the receiver's ULI
//! relaxes. Encoding adds nothing beyond a normal variation of access
//! offsets, which is why Grain-I–III defenses cannot see it.

use crate::covert::runner::{run_uli_channel, UliChannelConfig, UliRun};
use crate::covert::BitModes;
use crate::measure::{AddressPattern, Target};
use rdma_verbs::DeviceKind;
use sim_core::SimDuration;

/// The offset used to encode a 1-bit (footnote 11: 255 B on CX-4/5,
/// 257 B on CX-6).
pub fn one_offset(kind: DeviceKind) -> u64 {
    match kind {
        DeviceKind::ConnectX4 | DeviceKind::ConnectX5 => 255,
        DeviceKind::ConnectX6 => 257,
    }
}

/// Default parameters (footnote 11: 512 B reads, max send queue 8), bit
/// periods calibrated near Table V's intra-MR bandwidths.
pub fn default_config(kind: DeviceKind) -> UliChannelConfig {
    let bit_period_ns = match kind {
        DeviceKind::ConnectX4 => 31_000,
        DeviceKind::ConnectX5 => 31_700,
        DeviceKind::ConnectX6 => 12_300,
    };
    UliChannelConfig {
        tx_qp_count: 2,
        tx_depth: 12,
        tx_msg_len: 512,
        rx_depth: 6,
        rx_msg_len: 64,
        bit_period: SimDuration::from_nanos(bit_period_ns),
        high_is_one: false,
        mitigation_noise_ns: 0,
        background_traffic_len: None,
        fault_plan: None,
        seed: 0x17A4,
    }
}

/// Runs the intra-MR channel transmitting `bits` on `kind`.
pub fn run(kind: DeviceKind, bits: &[bool], cfg: &UliChannelConfig) -> UliRun {
    let one = one_offset(kind);
    run_uli_channel(kind, bits, cfg, |mr_a, _mr_b| BitModes {
        // Bit 0: offset 0 — same bank as the receiver's probe.
        zero: (
            AddressPattern::Fixed(Target {
                key: mr_a.key,
                addr: mr_a.addr(0),
            }),
            cfg.tx_msg_len,
        ),
        // Bit 1: offset 255/257 — different bank, unaligned tokens.
        one: (
            AddressPattern::Fixed(Target {
                key: mr_a.key,
                addr: mr_a.addr(one),
            }),
            cfg.tx_msg_len,
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::covert::random_bits;

    #[test]
    fn intra_mr_channel_decodes_on_cx4() {
        let cfg = default_config(DeviceKind::ConnectX4);
        let bits = random_bits(48, 33);
        let run = run(DeviceKind::ConnectX4, &bits, &cfg);
        assert!(
            run.report.error_rate() < 0.15,
            "error rate too high: {}",
            run.report.error_rate()
        );
    }

    #[test]
    fn grain_ii_profile_is_identical_across_bits() {
        // Stealthiness: both bit modes use the same opcode, size and MR —
        // only the offset differs, so per-opcode counters can't tell.
        let kind = DeviceKind::ConnectX5;
        let cfg = default_config(kind);
        assert_eq!(cfg.tx_msg_len, 512);
        assert_eq!(
            one_offset(kind) % 8,
            7,
            "one-offset is deliberately unaligned"
        );
    }

    #[test]
    fn zero_bits_raise_receiver_uli() {
        // Offset 0 aliases the receiver's bank, so 0-bits read HIGH.
        let kind = DeviceKind::ConnectX4;
        let cfg = default_config(kind);
        let bits = crate::covert::parse_bits("0101010101010101");
        let run = run(kind, &bits, &cfg);
        let mean_of = |want: bool| {
            let v: Vec<f64> = run
                .report
                .levels
                .iter()
                .zip(&bits)
                .filter(|(_, &b)| b == want)
                .map(|(&l, _)| l)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            mean_of(false) > mean_of(true),
            "0-bits must read high: {} vs {}",
            mean_of(false),
            mean_of(true)
        );
    }
}
