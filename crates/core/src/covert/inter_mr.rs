//! §V-C — the Grain-III inter-MR resource-based channel (Fig. 10/11).
//!
//! The sender encodes bit 1 by alternating reads between **two different
//! MRs** (each access reloads the TPU's resident protection context and
//! doubles the pressure on the receiver's bank) and bit 0 by alternating
//! two addresses inside **one MR**. The receiver's background-traffic ULI
//! rises on 1-bits.

use crate::covert::runner::{run_uli_channel, UliChannelConfig, UliRun};
use crate::covert::BitModes;
use crate::measure::{AddressPattern, Target};
use rdma_verbs::DeviceKind;
use sim_core::SimDuration;

/// The paper's best parameter combination per NIC (footnote 10:
/// 512 B / 64 B / 512 B reads; max send queue 10 / 6 / 6), with bit
/// periods calibrated to land near Table V's bandwidths.
pub fn default_config(kind: DeviceKind) -> UliChannelConfig {
    let (tx_msg_len, tx_depth, bit_period_ns) = match kind {
        DeviceKind::ConnectX4 => (512, 10, 31_400),
        DeviceKind::ConnectX5 => (512, 8, 15_700),
        DeviceKind::ConnectX6 => (512, 8, 11_900),
    };
    UliChannelConfig {
        tx_qp_count: 2,
        tx_depth,
        tx_msg_len,
        rx_depth: 6,
        rx_msg_len: 64,
        bit_period: SimDuration::from_nanos(bit_period_ns),
        high_is_one: true,
        mitigation_noise_ns: 0,
        background_traffic_len: None,
        fault_plan: None,
        seed: 0x1A7E,
    }
}

/// Runs the inter-MR channel transmitting `bits` on `kind`.
pub fn run(kind: DeviceKind, bits: &[bool], cfg: &UliChannelConfig) -> UliRun {
    run_uli_channel(kind, bits, cfg, |mr_a, mr_b| BitModes {
        // Bit 0: two addresses in the same MR — no context churn, and no
        // pressure on the receiver's bank.
        zero: (
            AddressPattern::Cycle(vec![
                Target {
                    key: mr_a.key,
                    addr: mr_a.addr(64),
                },
                Target {
                    key: mr_a.key,
                    addr: mr_a.addr(128),
                },
            ]),
            cfg.tx_msg_len,
        ),
        // Bit 1: alternate between two different MRs — every access
        // reloads the protection context and both targets alias the
        // receiver's bank.
        one: (
            AddressPattern::Cycle(vec![
                Target {
                    key: mr_a.key,
                    addr: mr_a.addr(0),
                },
                Target {
                    key: mr_b.key,
                    addr: mr_b.addr(0),
                },
            ]),
            cfg.tx_msg_len,
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::covert::random_bits;

    #[test]
    fn inter_mr_channel_decodes_on_cx4() {
        let cfg = default_config(DeviceKind::ConnectX4);
        let bits = random_bits(48, 21);
        let run = run(DeviceKind::ConnectX4, &bits, &cfg);
        assert_eq!(run.report.bits_sent, 48);
        assert!(
            run.report.error_rate() < 0.15,
            "error rate too high: {} (levels {:?})",
            run.report.error_rate(),
            &run.report.levels[..8.min(run.report.levels.len())]
        );
        assert!(
            run.report.raw_bandwidth_bps > 10e3,
            "should be tens of Kbps"
        );
    }

    #[test]
    fn one_bits_raise_receiver_uli() {
        let cfg = default_config(DeviceKind::ConnectX4);
        let bits = crate::covert::parse_bits("0101010101010101");
        let run = run(DeviceKind::ConnectX4, &bits, &cfg);
        let ones: Vec<f64> = run
            .report
            .levels
            .iter()
            .zip(&bits)
            .filter(|(_, &b)| b)
            .map(|(&l, _)| l)
            .collect();
        let zeros: Vec<f64> = run
            .report
            .levels
            .iter()
            .zip(&bits)
            .filter(|(_, &b)| !b)
            .map(|(&l, _)| l)
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&ones) > mean(&zeros),
            "1-bits must raise ULI: {} vs {}",
            mean(&ones),
            mean(&zeros)
        );
    }
}
