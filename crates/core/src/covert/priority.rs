//! §V-B — the Grain-I/II inter-traffic-class priority-based channel
//! (Fig. 9).
//!
//! The covert Rx (one client) maintains a small monitored flow; the
//! covert Tx (another client) saturates the shared server with RDMA
//! Writes of 128 B (bit 1) or 2048 B (bit 0). Bulk 2048 B writes press
//! much harder on the shared path, so the receiver's bandwidth drops
//! sharply on 0-bits — "the significant drop means bit 0, the slight
//! drop means bit 1".
//!
//! The paper's channel runs at ~1 bps because it reads second-granularity
//! bandwidth counters. Event counts at seconds of simulated time are kept
//! tractable with [`DeviceProfile::time_scaled`], which preserves every
//! contention ratio (see `DESIGN.md`).

use crate::covert::{count_errors, threshold_decode, BitModes, ChannelReport, ModulatingSender};
use crate::measure::{AddressPattern, BandwidthSampler, FlowStats, SaturatingFlow, Target};
use crate::testbed::Testbed;
use rdma_verbs::{AccessFlags, DeviceKind, DeviceProfile, FlowId, Opcode, TrafficClass};
use sim_core::{SimDuration, SimTime, TimeSeries};
use std::cell::RefCell;
use std::rc::Rc;

/// Parameters of the priority channel.
#[derive(Debug, Clone)]
pub struct PriorityChannelConfig {
    /// Time-scale factor applied to the device profile (rates divided,
    /// latencies kept) to keep long runs tractable.
    pub scale: f64,
    /// Bit period (simulated time; the paper uses ~1 s).
    pub bit_period: SimDuration,
    /// Write size encoding a 1-bit (128 B in Fig. 9).
    pub one_len: u64,
    /// Write size encoding a 0-bit (2048 B in Fig. 9).
    pub zero_len: u64,
    /// Receiver's monitored-flow read size.
    pub rx_msg_len: u64,
    /// Receiver's queue depth (a deliberately small flow).
    pub rx_depth: usize,
    /// Sender's queue depth.
    pub tx_depth: usize,
    /// Bandwidth-counter sampling interval.
    pub sample_interval: SimDuration,
    /// Optional fault plan installed on the fabric (robustness runs).
    pub fault_plan: Option<rdma_verbs::FaultPlan>,
    /// Seed.
    pub seed: u64,
}

impl Default for PriorityChannelConfig {
    fn default() -> Self {
        PriorityChannelConfig {
            scale: 0.005,
            bit_period: SimDuration::from_millis(100),
            one_len: 128,
            zero_len: 2048,
            rx_msg_len: 512,
            rx_depth: 2,
            tx_depth: 32,
            sample_interval: SimDuration::from_millis(10),
            fault_plan: None,
            seed: 0xF19,
        }
    }
}

/// Result of a priority-channel run.
#[derive(Debug, Clone)]
pub struct PriorityRun {
    /// Channel evaluation.
    pub report: ChannelReport,
    /// The receiver's sampled bandwidth trace (the Fig.-9 curve).
    pub rx_bandwidth: TimeSeries,
    /// Transmission start.
    pub start: SimTime,
}

/// Runs the priority channel transmitting `bits` on `kind`.
pub fn run(kind: DeviceKind, bits: &[bool], cfg: &PriorityChannelConfig) -> PriorityRun {
    let profile = DeviceProfile::preset(kind).time_scaled(cfg.scale);
    let mut tb = Testbed::new(profile, 2, cfg.seed);
    if let Some(plan) = &cfg.fault_plan {
        tb.sim.install_fault_plan(plan);
    }
    let mr_tx = tb.server_mr(4 << 20, AccessFlags::remote_all());
    let mr_rx = tb.server_mr(1 << 21, AccessFlags::remote_all());

    // ETS 50/50 between the two traffic classes, as in the paper's setup.
    for host in [tb.server, tb.clients[0], tb.clients[1]] {
        tb.sim.set_ets_weights(host, [1; 8]);
    }

    let start = SimTime::ZERO + cfg.bit_period;

    // Covert Tx: client 0, writes whose size encodes the bit.
    let tx_qp = tb.connect_client_with(0, TrafficClass::new(0), FlowId(1), cfg.tx_depth);
    let tx_pattern = AddressPattern::Stride {
        key: mr_tx.key,
        base: mr_tx.base_va,
        stride: 4160,
        count: 900,
    };
    let sender = tb.sim.add_app(Box::new(ModulatingSender::new(
        vec![tx_qp],
        Opcode::Write,
        BitModes {
            zero: (tx_pattern.clone(), cfg.zero_len),
            one: (tx_pattern, cfg.one_len),
        },
        bits.to_vec(),
        cfg.bit_period,
        start,
    )));
    tb.sim.own_qp(sender, tx_qp);

    // Covert Rx: client 1, a small monitored flow.
    let rx_qp = tb.connect_client_with(1, TrafficClass::new(1), FlowId(2), cfg.rx_depth);
    let stats = FlowStats::new(false);
    let paused = Rc::new(RefCell::new(false));
    let rx_flow = tb.sim.add_app(Box::new(SaturatingFlow::new(
        vec![rx_qp],
        Opcode::Read,
        cfg.rx_msg_len,
        AddressPattern::Fixed(Target {
            key: mr_rx.key,
            addr: mr_rx.addr(0),
        }),
        0x3000,
        Rc::clone(&stats),
        paused,
    )));
    tb.sim.own_qp(rx_flow, rx_qp);

    let series = Rc::new(RefCell::new(TimeSeries::new()));
    tb.sim.add_app(Box::new(BandwidthSampler::new(
        Rc::clone(&stats),
        cfg.sample_interval,
        Rc::clone(&series),
    )));

    let end = start + cfg.bit_period * bits.len() as u64 + cfg.sample_interval;
    tb.sim.run_until(end);

    let rx_bandwidth = series.borrow().clone();
    let mut levels = Vec::with_capacity(bits.len());
    for i in 0..bits.len() {
        let lo = start + cfg.bit_period * i as u64;
        let hi = lo + cfg.bit_period;
        // Samples report the window *ending* at their timestamp, so shift
        // the window by one interval.
        let level = rx_bandwidth
            .window_mean(lo + cfg.sample_interval, hi + cfg.sample_interval)
            .unwrap_or(0.0);
        levels.push(level);
    }
    // Bit 1 (small writes) leaves the receiver more bandwidth.
    let decoded = threshold_decode(&levels, true);
    let errors = count_errors(bits, &decoded);
    PriorityRun {
        report: ChannelReport {
            device: kind,
            bits_sent: bits.len(),
            bit_errors: errors,
            raw_bandwidth_bps: 1.0 / cfg.bit_period.as_secs_f64(),
            levels,
            decoded,
        },
        rx_bandwidth,
        start,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::covert::{parse_bits, FIG9_BITS};

    #[test]
    fn fig9_bitstream_decodes_error_free_on_cx4() {
        let cfg = PriorityChannelConfig::default();
        let bits = parse_bits(FIG9_BITS);
        let run = run(DeviceKind::ConnectX4, &bits, &cfg);
        assert_eq!(
            run.report.bit_errors, 0,
            "priority channel is error-free in the paper; levels: {:?}",
            run.report.levels
        );
        assert_eq!(run.report.decoded, bits);
    }

    #[test]
    fn zero_bits_cause_the_deeper_drop() {
        let cfg = PriorityChannelConfig::default();
        let bits = parse_bits("0101");
        let run = run(DeviceKind::ConnectX5, &bits, &cfg);
        assert!(
            run.report.levels[0] < run.report.levels[1],
            "2048 B writes must depress the receiver more than 128 B: {:?}",
            run.report.levels
        );
    }
}
