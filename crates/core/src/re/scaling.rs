//! Scaling studies along the Fig.-4 axes: how a flow's solo throughput
//! and its contention footprint change with QP count and message size.
//!
//! The paper's pie charts summarize exactly these two axes per opcode
//! pair; this module provides the quantitative curves behind them.

use crate::re::contention::{measure_pair, run_flows, FlowSpec, PairConfig};
use rdma_verbs::{DeviceProfile, Opcode};

/// One point of a solo-throughput scaling curve.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct ScalingPoint {
    /// The swept parameter value (QP count or message bytes).
    pub x: u64,
    /// Solo goodput in bits per second.
    pub solo_bps: f64,
}

/// Solo goodput of `opcode` flows as the QP count grows (fixed message
/// size). Saturating flows stop scaling once the per-NIC bottleneck —
/// TxPU for small messages, the wire for large ones — is reached, which
/// is why Fig. 4's qp-number axis matters.
pub fn qp_scaling(
    profile: &DeviceProfile,
    opcode: Opcode,
    msg_len: u64,
    qp_counts: &[usize],
    cfg: &PairConfig,
) -> Vec<ScalingPoint> {
    qp_counts
        .iter()
        .map(|&q| ScalingPoint {
            x: q as u64,
            solo_bps: run_flows(profile, &[FlowSpec::client(opcode, msg_len, q)], cfg)[0],
        })
        .collect()
}

/// Solo goodput of `opcode` flows as the message size grows (fixed QP
/// count). The knee of this curve is the pps→bandwidth transition that
/// drives Key Finding 1's crossover.
pub fn size_scaling(
    profile: &DeviceProfile,
    opcode: Opcode,
    sizes: &[u64],
    qp_count: usize,
    cfg: &PairConfig,
) -> Vec<ScalingPoint> {
    sizes
        .iter()
        .map(|&s| ScalingPoint {
            x: s,
            solo_bps: run_flows(profile, &[FlowSpec::client(opcode, s, qp_count)], cfg)[0],
        })
        .collect()
}

/// One row of a contention-footprint sweep: how much damage flow B does
/// to a fixed probe flow A, as B's parameter is swept.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct FootprintPoint {
    /// B's swept parameter.
    pub x: u64,
    /// A's fractional bandwidth loss under contention with B.
    pub probe_loss: f64,
}

/// Damage inflicted on a fixed read probe by write flows of increasing
/// size — the quantitative version of Fig. 4's blue box.
pub fn write_size_footprint(
    profile: &DeviceProfile,
    sizes: &[u64],
    cfg: &PairConfig,
) -> Vec<FootprintPoint> {
    let probe = FlowSpec::client(Opcode::Read, 512, 1);
    sizes
        .iter()
        .map(|&s| {
            let o = measure_pair(profile, probe, FlowSpec::client(Opcode::Write, s, 1), cfg);
            FootprintPoint {
                x: s,
                probe_loss: o.reduction_a(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;

    fn quick() -> PairConfig {
        PairConfig {
            warmup: SimDuration::from_micros(60),
            window: SimDuration::from_micros(120),
            seed: 9,
            depth: 32,
            fault_plan: None,
        }
    }

    #[test]
    fn small_reads_scale_with_qp_count_until_saturation() {
        let profile = DeviceProfile::connectx4();
        let curve = qp_scaling(&profile, Opcode::Read, 64, &[1, 2, 4], &quick());
        assert_eq!(curve.len(), 3);
        // More QPs must never reduce solo throughput materially.
        assert!(curve[1].solo_bps > 0.9 * curve[0].solo_bps);
        assert!(curve[2].solo_bps > 0.9 * curve[1].solo_bps);
    }

    #[test]
    fn size_scaling_has_a_pps_to_bandwidth_knee() {
        let profile = DeviceProfile::connectx4();
        let curve = size_scaling(&profile, Opcode::Write, &[64, 512, 4096], 1, &quick());
        // Small messages are pps-bound (low goodput); large ones approach
        // the line rate.
        assert!(curve[0].solo_bps < curve[1].solo_bps);
        assert!(curve[1].solo_bps < curve[2].solo_bps);
        assert!(
            curve[2].solo_bps > 15e9,
            "4 KB writes should near the 25 Gbps line: {}",
            curve[2].solo_bps
        );
    }

    #[test]
    fn write_footprint_grows_past_the_inline_threshold() {
        let profile = DeviceProfile::connectx4();
        let fp = write_size_footprint(&profile, &[64, 2048], &quick());
        assert!(
            fp[1].probe_loss > fp[0].probe_loss + 0.2,
            "bulk writes must hurt the probe more: {} vs {}",
            fp[0].probe_loss,
            fp[1].probe_loss
        );
    }
}
