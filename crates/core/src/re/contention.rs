//! §IV-B — Grain-I/II contention between different-priority traffic
//! (Fig. 4, Key Findings 1–3).
//!
//! Two flows share one RNIC pair, each on its own ETS traffic class with
//! equal (50/50) weights, exactly as the paper configures with
//! `mlnx_qos`. We measure each flow solo and then together, sweeping
//! opcode, message size, QP count and direction — the paper's ">6000
//! parameter combinations" benchmark.

use crate::measure::{AddressPattern, FlowStats, SaturatingFlow};
use crate::testbed::Testbed;
use rdma_verbs::{
    AccessFlags, ConnectOptions, DeviceProfile, FaultPlan, FlowId, Opcode, TrafficClass,
};
use sim_core::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Who posts the flow's work requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FlowDirection {
    /// The client is the requester (the common case).
    FromClient,
    /// The server is the requester targeting client memory — used for
    /// the "reverse RDMA Read" flows of Fig. 4's yellow box, whose data
    /// leaves the client through the low-priority Rx arbiter.
    ReverseFromServer,
}

/// One competing flow of the Fig.-4 study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct FlowSpec {
    /// Operation the flow issues.
    pub opcode: Opcode,
    /// Message size in bytes (ignored for atomics).
    pub msg_len: u64,
    /// Number of QPs the flow spreads across.
    pub qp_count: usize,
    /// Requester placement.
    pub direction: FlowDirection,
}

impl FlowSpec {
    /// A client-side flow.
    pub fn client(opcode: Opcode, msg_len: u64, qp_count: usize) -> Self {
        FlowSpec {
            opcode,
            msg_len,
            qp_count,
            direction: FlowDirection::FromClient,
        }
    }

    /// A reverse flow: the server reads from (or writes to) the client.
    pub fn reverse(opcode: Opcode, msg_len: u64, qp_count: usize) -> Self {
        FlowSpec {
            opcode,
            msg_len,
            qp_count,
            direction: FlowDirection::ReverseFromServer,
        }
    }
}

/// Measurement parameters.
#[derive(Debug, Clone)]
pub struct PairConfig {
    /// Settling time before the measurement window.
    pub warmup: SimDuration,
    /// Measurement window length.
    pub window: SimDuration,
    /// Experiment seed.
    pub seed: u64,
    /// Per-QP send-queue depth of the generators.
    pub depth: usize,
    /// Optional fault plan installed on the fabric (robustness runs).
    pub fault_plan: Option<FaultPlan>,
}

impl Default for PairConfig {
    fn default() -> Self {
        PairConfig {
            warmup: SimDuration::from_micros(100),
            window: SimDuration::from_micros(250),
            seed: 0xF1604,
            depth: 32,
            fault_plan: None,
        }
    }
}

/// Solo and contended goodputs of a flow pair.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct PairOutcome {
    /// Flow A alone, bits/s.
    pub solo_a_bps: f64,
    /// Flow B alone, bits/s.
    pub solo_b_bps: f64,
    /// Flow A under contention, bits/s.
    pub duo_a_bps: f64,
    /// Flow B under contention, bits/s.
    pub duo_b_bps: f64,
}

impl PairOutcome {
    /// Fractional bandwidth loss of flow A under contention (negative =
    /// gained bandwidth, the Key-Finding-2 anomaly).
    pub fn reduction_a(&self) -> f64 {
        1.0 - self.duo_a_bps / self.solo_a_bps
    }

    /// Fractional bandwidth loss of flow B under contention.
    pub fn reduction_b(&self) -> f64 {
        1.0 - self.duo_b_bps / self.solo_b_bps
    }

    /// Combined contended throughput relative to the larger solo flow
    /// (> 2.0 demonstrates the abnormal increment of Key Finding 2).
    pub fn total_ratio(&self) -> f64 {
        (self.duo_a_bps + self.duo_b_bps) / self.solo_a_bps.max(self.solo_b_bps)
    }
}

/// Runs the given flows concurrently and returns each flow's goodput in
/// the measurement window, in bits per second.
pub fn run_flows(profile: &DeviceProfile, specs: &[FlowSpec], cfg: &PairConfig) -> Vec<f64> {
    let mut tb = Testbed::new(profile.clone(), 1, cfg.seed);
    if let Some(plan) = &cfg.fault_plan {
        tb.sim.install_fault_plan(plan);
    }
    let mut stats_all = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let tc = TrafficClass::new(i as u8);
        let flow_id = FlowId(i as u32 + 1);
        let opts = ConnectOptions {
            tc,
            flow: flow_id,
            max_send_queue: cfg.depth,
        };
        // Each flow gets its own target MR, striding across it so TPU
        // banks and rows are exercised uniformly (this is a Grain-I/II
        // experiment; the Grain-IV offset structure must average out).
        // The stride is 4096+64 so consecutive accesses walk the banks:
        // a multiple of 4096 would alias every access onto bank 0 and
        // serialize the whole flow behind one bank.
        let (qps, mr) = match spec.direction {
            FlowDirection::FromClient => {
                let mr = tb.server_mr(4 << 20, AccessFlags::remote_all());
                let qps: Vec<_> = (0..spec.qp_count)
                    .map(|_| tb.connect_client(0, opts))
                    .collect();
                (qps, mr)
            }
            FlowDirection::ReverseFromServer => {
                let mr = tb.client_mr(0, 4 << 20, AccessFlags::remote_all());
                let qps: Vec<_> = (0..spec.qp_count)
                    .map(|_| tb.connect_server_to_client(0, opts))
                    .collect();
                (qps, mr)
            }
        };
        let pattern = AddressPattern::Stride {
            key: mr.key,
            base: mr.base_va,
            stride: 4160,
            count: ((mr.len - spec.msg_len.max(4160)) / 4160).max(1),
        };
        let stats = FlowStats::new(true);
        let paused = Rc::new(RefCell::new(false));
        let app = tb.sim.add_app(Box::new(SaturatingFlow::new(
            qps.clone(),
            spec.opcode,
            spec.msg_len,
            pattern,
            0x8000,
            Rc::clone(&stats),
            paused,
        )));
        for qp in qps {
            tb.sim.own_qp(app, qp);
        }
        stats_all.push(stats);
    }
    let start = SimTime::ZERO + cfg.warmup;
    let end = start + cfg.window;
    tb.sim.run_until(end);
    stats_all
        .iter()
        .map(|s| {
            let st = s.borrow();
            let series = st.completions.as_ref().expect("recording enabled");
            crate::measure::goodput_bps(series, start, end)
        })
        .collect()
}

/// Measures a flow pair: both solo baselines plus the contended run.
pub fn measure_pair(
    profile: &DeviceProfile,
    a: FlowSpec,
    b: FlowSpec,
    cfg: &PairConfig,
) -> PairOutcome {
    let solo_a = run_flows(profile, &[a], cfg)[0];
    let solo_b = run_flows(profile, &[b], cfg)[0];
    let duo = run_flows(profile, &[a, b], cfg);
    PairOutcome {
        solo_a_bps: solo_a,
        solo_b_bps: solo_b,
        duo_a_bps: duo[0],
        duo_b_bps: duo[1],
    }
}

/// One cell of the Fig.-4 grid.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct GridCell {
    /// The induced ("Ind.") flow — the one whose degradation is plotted.
    pub a: FlowSpec,
    /// The inducing ("Inr.") flow.
    pub b: FlowSpec,
    /// Measurement.
    pub outcome: PairOutcome,
}

/// Sweep configuration for [`contention_grid`].
#[derive(Debug, Clone)]
pub struct GridConfig {
    /// Message sizes each flow sweeps.
    pub sizes: Vec<u64>,
    /// QP counts each flow sweeps.
    pub qp_counts: Vec<usize>,
    /// Flow shapes to pair (opcode + direction).
    pub shapes: Vec<(Opcode, FlowDirection)>,
    /// Per-pair measurement parameters.
    pub pair: PairConfig,
    /// Worker threads.
    pub threads: usize,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            sizes: vec![64, 256, 512, 1024, 4096],
            qp_counts: vec![1, 2, 4, 8],
            shapes: vec![
                (Opcode::Read, FlowDirection::FromClient),
                (Opcode::Write, FlowDirection::FromClient),
                (Opcode::AtomicFetchAdd, FlowDirection::FromClient),
                (Opcode::Read, FlowDirection::ReverseFromServer),
            ],
            pair: PairConfig::default(),
            threads: 8,
        }
    }
}

/// Runs the full contention grid (the paper's ">6000 combinations" scan —
/// the default config enumerates every (shape, size, qp) pair in both
/// roles). Combos run in parallel; results come back in deterministic
/// order.
pub fn contention_grid(profile: &DeviceProfile, cfg: &GridConfig) -> Vec<GridCell> {
    let mut combos = Vec::new();
    for &(op_a, dir_a) in &cfg.shapes {
        for &(op_b, dir_b) in &cfg.shapes {
            for &size_a in &cfg.sizes {
                for &size_b in &cfg.sizes {
                    for &qp_a in &cfg.qp_counts {
                        for &qp_b in &cfg.qp_counts {
                            let a = FlowSpec {
                                opcode: op_a,
                                msg_len: size_a,
                                qp_count: qp_a,
                                direction: dir_a,
                            };
                            let b = FlowSpec {
                                opcode: op_b,
                                msg_len: size_b,
                                qp_count: qp_b,
                                direction: dir_b,
                            };
                            combos.push((a, b));
                        }
                    }
                }
            }
        }
    }
    grid_over(profile, &combos, cfg)
}

/// Runs an explicit list of flow pairs in parallel.
pub fn grid_over(
    profile: &DeviceProfile,
    combos: &[(FlowSpec, FlowSpec)],
    cfg: &GridConfig,
) -> Vec<GridCell> {
    let threads = cfg.threads.max(1);
    let results: Vec<RefCell<Option<GridCell>>> =
        combos.iter().map(|_| RefCell::new(None)).collect();
    // RefCell is not Sync; use a simple index-striped split instead.
    let mut out: Vec<Option<GridCell>> = vec![None; combos.len()];
    std::thread::scope(|scope| {
        let chunks: Vec<(usize, &mut [Option<GridCell>])> = {
            let mut v = Vec::new();
            let mut rest: &mut [Option<GridCell>] = &mut out;
            let per = combos.len().div_ceil(threads);
            let mut start = 0;
            while !rest.is_empty() {
                let take = per.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                v.push((start, head));
                start += take;
                rest = tail;
            }
            v
        };
        for (start, chunk) in chunks {
            let pair_cfg = cfg.pair.clone();
            scope.spawn(move || {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    let (a, b) = combos[start + i];
                    let mut c = pair_cfg.clone();
                    c.seed = pair_cfg.seed.wrapping_add((start + i) as u64);
                    let outcome = measure_pair(profile, a, b, &c);
                    *slot = Some(GridCell { a, b, outcome });
                }
            });
        }
    });
    drop(results);
    out.into_iter().map(|c| c.expect("cell computed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> PairConfig {
        PairConfig {
            warmup: SimDuration::from_micros(60),
            window: SimDuration::from_micros(150),
            seed: 42,
            depth: 32,
            fault_plan: None,
        }
    }

    #[test]
    fn small_writes_lose_half_against_reads() {
        // Fig. 4 blue box, first half: small competing writes lose > 50 %.
        let out = measure_pair(
            &DeviceProfile::connectx4(),
            FlowSpec::client(Opcode::Write, 64, 1),
            FlowSpec::client(Opcode::Read, 512, 1),
            &quick(),
        );
        assert!(
            out.reduction_a() > 0.35,
            "small write should lose heavily: reduction {}",
            out.reduction_a()
        );
        assert!(
            out.reduction_b() < 0.25,
            "the read flow should be largely unaffected: {}",
            out.reduction_b()
        );
    }

    #[test]
    fn big_writes_crush_reads() {
        // Fig. 4 blue box, second half: once writes reach ~512 B they win
        // and reads drop 30–80 %.
        let out = measure_pair(
            &DeviceProfile::connectx4(),
            FlowSpec::client(Opcode::Read, 512, 1),
            FlowSpec::client(Opcode::Write, 2048, 1),
            &quick(),
        );
        assert!(
            out.reduction_a() > 0.3,
            "reads should drop at least 30 %: {}",
            out.reduction_a()
        );
        assert!(
            out.reduction_b() < 0.3,
            "big writes should mostly keep their bandwidth: {}",
            out.reduction_b()
        );
    }

    #[test]
    fn write_contention_crossover_is_non_monotonic() {
        // Key Finding 1: the winner flips with the write size.
        let small = measure_pair(
            &DeviceProfile::connectx4(),
            FlowSpec::client(Opcode::Read, 512, 1),
            FlowSpec::client(Opcode::Write, 64, 1),
            &quick(),
        );
        let big = measure_pair(
            &DeviceProfile::connectx4(),
            FlowSpec::client(Opcode::Read, 512, 1),
            FlowSpec::client(Opcode::Write, 2048, 1),
            &quick(),
        );
        assert!(
            big.reduction_a() > small.reduction_a() + 0.15,
            "read loss must grow sharply past the write-size crossover: small {} big {}",
            small.reduction_a(),
            big.reduction_a()
        );
    }

    #[test]
    fn small_write_pairs_show_abnormal_increment() {
        // Key Finding 2: two small-write flows activate the NoC lane and
        // their combined throughput exceeds 200 % of a solo flow.
        let out = measure_pair(
            &DeviceProfile::connectx4(),
            FlowSpec::client(Opcode::Write, 64, 1),
            FlowSpec::client(Opcode::Write, 64, 1),
            &quick(),
        );
        assert!(
            out.total_ratio() > 2.0,
            "combined small-write throughput should exceed 200 %: {}",
            out.total_ratio()
        );
    }

    #[test]
    fn tx_arbiter_beats_rx_arbiter() {
        // Key Finding 3 / Fig. 4 yellow box: a write flow and a reverse
        // read flow with identical parameters behave differently against
        // the same competing write traffic, because reverse-read data
        // leaves the client via the lower-priority Rx arbiter.
        let cfg = quick();
        let against_write = FlowSpec::client(Opcode::Write, 2048, 2);
        let write_victim = measure_pair(
            &DeviceProfile::connectx4(),
            FlowSpec::client(Opcode::Write, 2048, 2),
            against_write,
            &cfg,
        );
        let reverse_victim = measure_pair(
            &DeviceProfile::connectx4(),
            FlowSpec::reverse(Opcode::Read, 2048, 2),
            against_write,
            &cfg,
        );
        assert!(
            reverse_victim.reduction_a() > write_victim.reduction_a() + 0.1,
            "reverse reads must suffer more than symmetric writes: {} vs {}",
            reverse_victim.reduction_a(),
            write_victim.reduction_a()
        );
    }

    #[test]
    fn atomics_follow_the_write_trend() {
        // Fig. 4 orange box: atomics show a similar competition pattern.
        let out = measure_pair(
            &DeviceProfile::connectx4(),
            FlowSpec::client(Opcode::AtomicFetchAdd, 8, 1),
            FlowSpec::client(Opcode::Write, 2048, 1),
            &quick(),
        );
        assert!(
            out.reduction_a() > 0.2,
            "atomics should lose against bulk writes: {}",
            out.reduction_a()
        );
    }

    #[test]
    fn grid_runs_in_parallel_and_is_deterministic() {
        let profile = DeviceProfile::connectx4();
        let combos = vec![
            (
                FlowSpec::client(Opcode::Read, 512, 1),
                FlowSpec::client(Opcode::Write, 64, 1),
            ),
            (
                FlowSpec::client(Opcode::Write, 64, 1),
                FlowSpec::client(Opcode::Write, 64, 1),
            ),
        ];
        let cfg = GridConfig {
            pair: quick(),
            threads: 2,
            ..GridConfig::default()
        };
        let run1 = grid_over(&profile, &combos, &cfg);
        let run2 = grid_over(&profile, &combos, &cfg);
        assert_eq!(run1.len(), 2);
        for (a, b) in run1.iter().zip(&run2) {
            assert_eq!(a.outcome.duo_a_bps.to_bits(), b.outcome.duo_a_bps.to_bits());
        }
    }
}
