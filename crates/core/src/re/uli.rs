//! §IV-C — the Unit Latency Increase (ULI) methodology.
//!
//! `Lat_total` from `ibv_post_send` to polling the completion includes the
//! queueing delay of the `len_sq` WQEs ahead, so
//! `Lat_total = k · (len_sq + 1) + C` and `ULI ≈ Lat_total / (len_sq + 1)`
//! characterizes per-request contention. This module validates the
//! linearity claim (the paper reports Pearson r = 0.9998) and reproduces
//! Fig. 5 (ULI vs. same/different remote MR vs. message size).

use crate::measure::{AddressPattern, Target, UliProbe, UliSample};
use crate::testbed::Testbed;
use rdma_verbs::{AccessFlags, DeviceProfile, FaultPlan, FlowId, TrafficClass};
use sim_core::{linear_fit, LineFit, SimTime, Summary};
use std::cell::RefCell;
use std::rc::Rc;

/// Outcome of the linearity validation.
#[derive(Debug, Clone)]
pub struct LinearityReport {
    /// Queue depths swept.
    pub depths: Vec<usize>,
    /// Mean `Lat_total` (ns) at each depth.
    pub mean_latency_ns: Vec<f64>,
    /// The least-squares fit of latency against depth.
    pub fit: LineFit,
}

/// Runs one ULI probe and returns its steady-state samples.
///
/// `warmup_samples` leading observations (cold caches, row buffers) are
/// discarded.
pub fn probe_uli(
    profile: &DeviceProfile,
    depth: usize,
    msg_len: u64,
    pattern_of: impl FnOnce(&mut Testbed) -> AddressPattern,
    horizon: SimTime,
    warmup_samples: usize,
    seed: u64,
) -> Vec<UliSample> {
    probe_uli_with_faults(
        profile,
        depth,
        msg_len,
        pattern_of,
        horizon,
        warmup_samples,
        seed,
        None,
    )
}

/// [`probe_uli`] with an optional fault plan installed on the fabric —
/// used by the robustness suite to check that ULI statistics degrade
/// gracefully (rather than wedging) under packet loss and reordering.
#[allow(clippy::too_many_arguments)]
pub fn probe_uli_with_faults(
    profile: &DeviceProfile,
    depth: usize,
    msg_len: u64,
    pattern_of: impl FnOnce(&mut Testbed) -> AddressPattern,
    horizon: SimTime,
    warmup_samples: usize,
    seed: u64,
    fault_plan: Option<&FaultPlan>,
) -> Vec<UliSample> {
    let mut tb = Testbed::new(profile.clone(), 1, seed);
    if let Some(plan) = fault_plan {
        tb.sim.install_fault_plan(plan);
    }
    let pattern = pattern_of(&mut tb);
    let qp = tb.connect_client_with(0, TrafficClass::new(0), FlowId(1), depth);
    let samples = Rc::new(RefCell::new(Vec::new()));
    let app = tb.sim.add_app(Box::new(UliProbe::new(
        qp,
        depth,
        msg_len,
        pattern,
        0x1000,
        Rc::clone(&samples),
    )));
    tb.sim.own_qp(app, qp);
    tb.sim.run_until(horizon);
    let mut all = samples.borrow().clone();
    if all.len() > warmup_samples {
        all.drain(..warmup_samples);
    } else {
        all.clear();
    }
    all
}

/// Validates `Lat_total = k · (len_sq + 1) + C` across queue depths
/// (§IV-C footnotes 7–8).
pub fn linearity_report(profile: &DeviceProfile, seed: u64) -> LinearityReport {
    // The k·(len_sq+1) law holds once the pipeline is saturated (the
    // paper's footnote 7 derives it for the stable-traffic case), so the
    // sweep starts where queueing dominates the fixed round-trip terms.
    let depths = vec![64usize, 96, 128, 192, 256];
    let mut mean_latency_ns = Vec::with_capacity(depths.len());
    for (i, &depth) in depths.iter().enumerate() {
        let samples = probe_uli(
            profile,
            depth,
            64,
            |tb| {
                let mr = tb.server_mr(1 << 21, AccessFlags::remote_all());
                AddressPattern::Fixed(Target {
                    key: mr.key,
                    addr: mr.addr(0),
                })
            },
            SimTime::from_micros(100 + 20 * depth as u64),
            30,
            seed.wrapping_add(i as u64),
        );
        let mean = samples.iter().map(|s| s.latency_ns).sum::<f64>() / samples.len() as f64;
        mean_latency_ns.push(mean);
    }
    let xs: Vec<f64> = depths.iter().map(|&d| d as f64).collect();
    let fit = linear_fit(&xs, &mean_latency_ns);
    LinearityReport {
        depths,
        mean_latency_ns,
        fit,
    }
}

/// One row of the Fig.-5 experiment.
#[derive(Debug, Clone)]
pub struct MrUliPoint {
    /// Message size in bytes.
    pub msg_len: u64,
    /// ULI summary when alternating two addresses in the *same* MR.
    pub same_mr: Summary,
    /// ULI summary when alternating addresses in *different* MRs.
    pub diff_mr: Summary,
}

/// Fig. 5: ULI vs. same/different remote MRs vs. message size
/// (alternating reads, 2 QPs in the paper; one probe QP here since the
/// pattern alternation is what matters).
pub fn mr_uli_sweep(profile: &DeviceProfile, msg_sizes: &[u64], seed: u64) -> Vec<MrUliPoint> {
    mr_uli_sweep_with_faults(profile, msg_sizes, seed, None)
}

/// [`mr_uli_sweep`] with an optional fault plan installed on every probe
/// fabric.
pub fn mr_uli_sweep_with_faults(
    profile: &DeviceProfile,
    msg_sizes: &[u64],
    seed: u64,
    fault_plan: Option<&FaultPlan>,
) -> Vec<MrUliPoint> {
    let depth = 8;
    msg_sizes
        .iter()
        .enumerate()
        .map(|(i, &msg_len)| {
            let same = probe_uli_with_faults(
                profile,
                depth,
                msg_len,
                |tb| {
                    let mr = tb.server_mr(2 << 21, AccessFlags::remote_all());
                    AddressPattern::Cycle(vec![
                        Target {
                            key: mr.key,
                            addr: mr.addr(0),
                        },
                        Target {
                            key: mr.key,
                            addr: mr.addr(1 << 20),
                        },
                    ])
                },
                SimTime::from_micros(800),
                40,
                seed.wrapping_add(2 * i as u64),
                fault_plan,
            );
            let diff = probe_uli_with_faults(
                profile,
                depth,
                msg_len,
                |tb| {
                    let mr_a = tb.server_mr(1 << 21, AccessFlags::remote_all());
                    let mr_b = tb.server_mr(1 << 21, AccessFlags::remote_all());
                    AddressPattern::Cycle(vec![
                        Target {
                            key: mr_a.key,
                            addr: mr_a.addr(0),
                        },
                        Target {
                            key: mr_b.key,
                            addr: mr_b.addr(0),
                        },
                    ])
                },
                SimTime::from_micros(800),
                40,
                seed.wrapping_add(2 * i as u64 + 1),
                fault_plan,
            );
            MrUliPoint {
                msg_len,
                same_mr: Summary::from_samples(&same.iter().map(|s| s.uli_ns).collect::<Vec<_>>()),
                diff_mr: Summary::from_samples(&diff.iter().map(|s| s.uli_ns).collect::<Vec<_>>()),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_linear_in_queue_depth() {
        let report = linearity_report(&DeviceProfile::connectx4(), 77);
        assert!(
            report.fit.r > 0.999,
            "paper reports r = 0.9998; got r = {}",
            report.fit.r
        );
        assert!(report.fit.slope > 0.0);
    }

    #[test]
    fn different_mr_costs_more_uli() {
        let points = mr_uli_sweep(&DeviceProfile::connectx4(), &[64, 1024], 5);
        for p in &points {
            assert!(
                p.diff_mr.mean > p.same_mr.mean,
                "at {} B: diff-MR ULI {} should exceed same-MR {}",
                p.msg_len,
                p.diff_mr.mean,
                p.same_mr.mean
            );
        }
        // The gap is the MR context reload; it matters most for small
        // messages where the TPU dominates the per-request cost.
        let small_gap = points[0].diff_mr.mean - points[0].same_mr.mean;
        assert!(
            small_gap > 20.0,
            "context-switch gap too small: {small_gap} ns"
        );
    }

    #[test]
    fn probe_discards_warmup() {
        let samples = probe_uli(
            &DeviceProfile::connectx5(),
            4,
            64,
            |tb| {
                let mr = tb.server_mr(1 << 21, AccessFlags::remote_all());
                AddressPattern::Fixed(Target {
                    key: mr.key,
                    addr: mr.addr(0),
                })
            },
            SimTime::from_micros(100),
            10,
            3,
        );
        assert!(!samples.is_empty());
        // Steady state: ULI spread stays tight.
        let uli: Vec<f64> = samples.iter().map(|s| s.uli_ns).collect();
        let s = Summary::from_samples(&uli);
        assert!(s.max - s.min < s.mean, "steady-state ULI too noisy: {s:?}");
    }
}
