//! §IV — reverse-engineering the RNIC.
//!
//! * [`contention`] — the Grain-I/II priority study behind Fig. 4 and Key
//!   Findings 1–3: pairs of competing flows swept over opcodes, message
//!   sizes, QP counts and directions.
//! * [`uli`] — the Unit Latency Increase methodology of §IV-C: linearity
//!   validation and the Fig.-5 same-MR/different-MR comparison.
//! * [`offset`] — the Grain-IV offset effect of Fig. 6–8: ULI versus
//!   absolute and relative remote-address offsets.
//! * [`scaling`] — solo-throughput and contention-footprint curves along
//!   the Fig.-4 axes (QP count, message size).

pub mod contention;
pub mod offset;
pub mod scaling;
pub mod uli;
