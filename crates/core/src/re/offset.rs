//! §IV-C / Key Finding 4 — the Grain-IV address-offset effect
//! (Fig. 6, 7, 8).
//!
//! With Grain-II parameters fixed, the *remote address* of RDMA Reads
//! still modulates the datapath: ULI drops at 8 B-aligned offsets, drops
//! further at 64 B multiples, and shows 2048 B periodicity; the offset
//! *relative* to the previous read has its own (prefetch-shaped) effect.

use crate::measure::{AddressPattern, Target};
use crate::re::uli::probe_uli;
use rdma_verbs::{AccessFlags, DeviceProfile};
use sim_core::{SimTime, Summary};

/// One point of an offset sweep.
#[derive(Debug, Clone)]
pub struct OffsetPoint {
    /// The swept offset in bytes.
    pub offset: u64,
    /// ULI summary (ns) at that offset.
    pub uli: Summary,
}

/// Configuration of the Fig. 6/7/8 sweeps.
#[derive(Debug, Clone)]
pub struct OffsetSweepConfig {
    /// Read size in bytes (64 for Fig. 6/8, 1024 for Fig. 7).
    pub msg_len: u64,
    /// Offsets to sweep.
    pub offsets: Vec<u64>,
    /// Probe queue depth.
    pub depth: usize,
    /// Simulated time per offset.
    pub horizon: SimTime,
    /// Leading samples to discard per offset.
    pub warmup: usize,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for OffsetSweepConfig {
    fn default() -> Self {
        OffsetSweepConfig {
            msg_len: 64,
            offsets: (0..4096).step_by(16).collect(),
            // A moderate depth keeps the probe in the regime where ULI
            // reflects per-request cost *without* the two-address bank
            // parallelism flattening the alignment structure.
            depth: 8,
            horizon: SimTime::from_micros(320),
            warmup: 20,
            seed: 0xA11CE,
        }
    }
}

/// Fig. 6/7: ULI vs. **absolute** offset — alternately reading offset 0
/// and offset `a` of the same remote MR, for each `a` in the sweep.
pub fn absolute_offset_sweep(profile: &DeviceProfile, cfg: &OffsetSweepConfig) -> Vec<OffsetPoint> {
    cfg.offsets
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            let samples = probe_uli(
                profile,
                cfg.depth,
                cfg.msg_len,
                |tb| {
                    let mr = tb.server_mr(4 << 20, AccessFlags::remote_all());
                    AddressPattern::Cycle(vec![
                        Target {
                            key: mr.key,
                            addr: mr.addr(0),
                        },
                        Target {
                            key: mr.key,
                            addr: mr.addr(a),
                        },
                    ])
                },
                cfg.horizon,
                cfg.warmup,
                cfg.seed.wrapping_add(i as u64),
            );
            let uli: Vec<f64> = samples.iter().map(|s| s.uli_ns).collect();
            OffsetPoint {
                offset: a,
                uli: Summary::from_samples(&uli),
            }
        })
        .collect()
}

/// Fig. 8: ULI vs. **relative** offset — consecutive reads separated by a
/// fixed delta `r`, with the pair base rotated across 2 KiB rows so the
/// absolute-alignment component averages out.
pub fn relative_offset_sweep(profile: &DeviceProfile, cfg: &OffsetSweepConfig) -> Vec<OffsetPoint> {
    cfg.offsets
        .iter()
        .enumerate()
        .map(|(i, &r)| {
            let samples = probe_uli(
                profile,
                cfg.depth,
                cfg.msg_len,
                |tb| {
                    let mr = tb.server_mr(8 << 20, AccessFlags::remote_all());
                    // Pairs (x, x+r) with x stepping over aligned bases.
                    let mut targets = Vec::new();
                    for j in 0..8u64 {
                        let x = j * 8192;
                        targets.push(Target {
                            key: mr.key,
                            addr: mr.addr(x),
                        });
                        targets.push(Target {
                            key: mr.key,
                            addr: mr.addr(x + r),
                        });
                    }
                    AddressPattern::Cycle(targets)
                },
                cfg.horizon,
                cfg.warmup,
                cfg.seed.wrapping_add(i as u64),
            );
            let uli: Vec<f64> = samples.iter().map(|s| s.uli_ns).collect();
            OffsetPoint {
                offset: r,
                uli: Summary::from_samples(&uli),
            }
        })
        .collect()
}

/// Means of the sweep points grouped by a predicate — convenience for
/// checking alignment-induced level differences.
pub fn mean_where(points: &[OffsetPoint], pred: impl Fn(u64) -> bool) -> f64 {
    let sel: Vec<f64> = points
        .iter()
        .filter(|p| pred(p.offset))
        .map(|p| p.uli.mean)
        .collect();
    assert!(!sel.is_empty(), "predicate selected no points");
    sel.iter().sum::<f64>() / sel.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(offsets: Vec<u64>) -> OffsetSweepConfig {
        OffsetSweepConfig {
            offsets,
            horizon: SimTime::from_micros(80),
            warmup: 15,
            ..OffsetSweepConfig::default()
        }
    }

    #[test]
    fn aligned_offsets_are_faster() {
        let profile = DeviceProfile::connectx4();
        // Mix of 64-aligned, 8-aligned and unaligned offsets.
        let offsets: Vec<u64> = vec![64, 128, 192, 256, 72, 136, 200, 264, 67, 133, 197, 261];
        let points = absolute_offset_sweep(&profile, &quick_cfg(offsets));
        let aligned64 = mean_where(&points, |o| o % 64 == 0);
        let aligned8 = mean_where(&points, |o| o % 8 == 0 && o % 64 != 0);
        let unaligned = mean_where(&points, |o| o % 8 != 0);
        assert!(
            aligned64 < aligned8,
            "64 B-aligned ULI {aligned64} should drop below 8 B-aligned {aligned8}"
        );
        assert!(
            aligned8 < unaligned,
            "8 B-aligned ULI {aligned8} should drop below unaligned {unaligned}"
        );
    }

    #[test]
    fn row_periodicity_at_2048() {
        let profile = DeviceProfile::connectx4();
        // Same alignment class, different rows relative to offset 0:
        // 2048·even shares the row buffer with 0 (ping-pong conflict on
        // CX-4's 2 buffers), 2048·odd does not.
        let offsets: Vec<u64> = vec![4096, 8192, 12288, 2048, 6144, 10240];
        let points = absolute_offset_sweep(&profile, &quick_cfg(offsets));
        let conflicting = mean_where(&points, |o| (o / 2048) % 2 == 0);
        let friendly = mean_where(&points, |o| (o / 2048) % 2 == 1);
        assert!(
            conflicting > friendly + 5.0,
            "row ping-pong ({conflicting}) should exceed buffered rows ({friendly})"
        );
    }

    #[test]
    fn relative_offset_shows_prefetch_window() {
        let profile = DeviceProfile::connectx4();
        let offsets: Vec<u64> = vec![0, 64, 128, 192, 256, 1024, 1536];
        let points = relative_offset_sweep(&profile, &quick_cfg(offsets));
        // Small deltas (within the prefetch reach) are cheaper than far
        // jumps.
        let near = points
            .iter()
            .filter(|p| p.offset <= 256)
            .map(|p| p.uli.mean)
            .fold(f64::INFINITY, f64::min);
        let far = mean_where(&points, |o| o >= 1024);
        assert!(
            near < far,
            "near-delta ULI {near} should undercut far-delta {far}"
        );
    }
}
