//! §VI — side-channel Ragnar attacks on real-world applications.
//!
//! * [`fingerprint`] — Grain-II fingerprinting of a distributed
//!   database's shuffle/join operations from the attacker's own
//!   bandwidth (Algorithm 1, Fig. 12).
//! * [`snoop`] — Grain-IV snooping of the access address of a
//!   Sherman-style disaggregated-memory KV store via the offset effect
//!   (Fig. 13), including the trace classifier reaching the paper's
//!   95.6 % accuracy target.

pub mod fingerprint;
pub mod snoop;
