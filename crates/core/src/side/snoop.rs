//! §VI-B — snooping the victim's access address on disaggregated memory
//! with the Grain-IV offset effect (Fig. 13).
//!
//! The victim (a Sherman KV client) repeatedly reads a 64 B record at a
//! secret offset of a 1 KB shared file (17 candidates, 0–1024 B). The
//! attacker sweeps an *observation set* of 257 offsets (0–1024 B in 4 B
//! steps), issuing 64 B reads and measuring ULI at each (step ❶); the
//! per-offset averages form a trace revealing the victim's address
//! (step ❷); a trained classifier recovers the candidate from the trace
//! (step ❸) — the paper reports 95.6 % accuracy.

use crate::testbed::Testbed;
use ragnar_workloads::sherman::{value_from, ShermanTree, ShermanVictim, NODE_SIZE};
use rdma_verbs::{
    AccessFlags, App, ConnectOptions, Cqe, Ctx, DeviceKind, DeviceProfile, FlowId, HostId,
    MrHandle, QpHandle, TrafficClass, VerbsError, WorkRequest,
};
use sim_core::{SimRng, SimTime};
use std::cell::RefCell;
use std::rc::Rc;
use trace_classifier::{
    CnnClassifier, CnnConfig, Dataset, MlpClassifier, TemplateClassifier, TrainConfig,
};

/// Parameters of the snooping attack.
#[derive(Debug, Clone)]
pub struct SnoopConfig {
    /// Observation span in bytes (the shared file size).
    pub span: u64,
    /// Observation step (4 B ⇒ 257 samples over 1 KB).
    pub step: u64,
    /// ULI samples collected per observation offset (the pool).
    pub samples_per_offset: usize,
    /// Warm-up samples discarded per offset.
    pub warmup_per_offset: usize,
    /// Samples averaged per trace point when bootstrapping traces
    /// (the paper's "N times").
    pub reps_per_trace: usize,
    /// Attacker probe queue depth.
    pub probe_depth: usize,
    /// Victim queue depth.
    pub victim_depth: usize,
    /// Candidate victim offsets (17 candidates, 0–1024 B in the paper).
    pub candidates: Vec<u64>,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for SnoopConfig {
    fn default() -> Self {
        SnoopConfig {
            span: 1024,
            step: 4,
            samples_per_offset: 80,
            warmup_per_offset: 6,
            reps_per_trace: 50,
            // The probe must be queue-dominated (its ULI then reflects
            // bank service time directly) and the victim must keep real
            // pressure on its bank — see DESIGN.md §4 and EXPERIMENTS.md.
            probe_depth: 32,
            victim_depth: 16,
            candidates: (0..=16).map(|i| i * 64).collect(),
            seed: 0x5EEB,
        }
    }
}

impl SnoopConfig {
    /// The observation offsets (0, step, …, span inclusive).
    pub fn observation_offsets(&self) -> Vec<u64> {
        (0..=self.span / self.step).map(|i| i * self.step).collect()
    }
}

/// The attacker's sweeping probe: for each observation offset, keeps its
/// queue full with 64 B reads, records ULI samples, drains, then moves to
/// the next offset.
///
/// Closed loops in a low-noise fabric phase-lock against the victim's
/// loop, which makes per-session contention patterns idiosyncratic. The
/// probe therefore *re-phases*: every few samples it drains and idles
/// for a short pseudo-random gap, so each pool averages over many
/// relative phases and session-to-session traces agree.
struct SweepProbe {
    qp: QpHandle,
    depth: usize,
    mr: MrHandle,
    file_base: u64,
    offsets: Vec<u64>,
    per_offset: usize,
    warmup: usize,
    rephase_every: usize,
    current: usize,
    collected: usize,
    outstanding: usize,
    draining: bool,
    pools: Rc<RefCell<Vec<Vec<f64>>>>,
    seq: u64,
}

impl SweepProbe {
    fn post_one(&mut self, ctx: &mut Ctx<'_>) -> bool {
        let off = self.offsets[self.current];
        self.seq += 1;
        match ctx.post_send(
            self.qp,
            WorkRequest::read(
                self.seq,
                0x6000,
                self.mr.addr(self.file_base + off),
                self.mr.key,
                64,
            ),
        ) {
            Ok(()) => {
                self.outstanding += 1;
                true
            }
            Err(VerbsError::SendQueueFull) | Err(VerbsError::QpInError) => false,
            Err(e) => panic!("probe post failed: {e}"),
        }
    }

    fn fill(&mut self, ctx: &mut Ctx<'_>) {
        if self.draining || self.current >= self.offsets.len() {
            return;
        }
        while self.post_one(ctx) {}
    }
}

impl SweepProbe {
    /// Deterministic per-chunk idle gap (sub-µs, varied so consecutive
    /// re-phasings land at different relative phases).
    fn rephase_gap(&self) -> sim_core::SimDuration {
        let salt = self.seq.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        sim_core::SimDuration::from_nanos(300 + salt % 700)
    }
}

impl App for SweepProbe {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.fill(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        // Re-phase gap over: resume the current offset.
        self.fill(ctx);
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_>, _host: HostId, cqe: Cqe) {
        self.outstanding -= 1;
        if self.current >= self.offsets.len() {
            if self.outstanding == 0 {
                ctx.stop();
            }
            return;
        }
        if !self.draining {
            self.collected += 1;
            if self.collected > self.warmup {
                let uli = cqe.latency().as_nanos_f64() / self.depth as f64;
                self.pools.borrow_mut()[self.current].push(uli);
            }
            if self.collected >= self.warmup + self.per_offset {
                // Drain before switching offsets so samples never mix.
                self.draining = true;
            } else if self.collected > self.warmup
                && (self.collected - self.warmup).is_multiple_of(self.rephase_every)
            {
                // Mid-offset re-phasing: let the pipeline drain, then
                // resume after a pseudo-random idle gap.
                if self.outstanding == 0 {
                    let gap = self.rephase_gap();
                    ctx.set_timer(gap, 0);
                }
                // (While outstanding > 0 we simply stop refilling; the
                // remaining completions still record samples and the last
                // one arms the timer below.)
                return;
            } else {
                self.fill(ctx);
            }
        }
        if !self.draining && self.outstanding == 0 && self.collected < self.warmup + self.per_offset
        {
            // Pipeline drained mid-chunk (re-phasing): idle briefly.
            let gap = self.rephase_gap();
            ctx.set_timer(gap, 0);
            return;
        }
        if self.draining && self.outstanding == 0 {
            self.draining = false;
            self.collected = 0;
            self.current += 1;
            if self.current >= self.offsets.len() {
                ctx.stop();
            } else {
                self.fill(ctx);
            }
        }
    }
}

/// Raw per-offset ULI sample pools for one victim placement.
#[derive(Debug, Clone)]
pub struct SamplePools {
    /// `pools[i]` holds the samples for observation offset `i·step`.
    pub pools: Vec<Vec<f64>>,
    /// The victim's secret offset this run used.
    pub victim_offset: u64,
}

/// Runs step ❶ once: victim at `victim_offset`, attacker sweeping the
/// observation set; returns the per-offset sample pools.
pub fn collect_pools(kind: DeviceKind, victim_offset: u64, cfg: &SnoopConfig) -> SamplePools {
    let profile = DeviceProfile::preset(kind);
    let mut tb = Testbed::new(profile, 2, cfg.seed ^ victim_offset);

    // Build the Sherman index and the shared 1 KB file after it.
    let pairs: Vec<(u64, [u8; 56])> = (0..200u64)
        .map(|i| (i * 3 + 1, value_from(format!("rec{i}").as_bytes())))
        .collect();
    let tree = ShermanTree::bulk_load(&pairs, 0.8);
    let file_base = (tree.image().len() as u64).div_ceil(NODE_SIZE) * NODE_SIZE;
    let mr = tb.server_mr(
        (file_base + cfg.span + NODE_SIZE).max(1 << 21),
        AccessFlags::remote_all(),
    );
    let image = tree.image().to_vec();
    tb.sim.write_memory(tb.server, mr.addr(0), &image);

    // Victim on client 0.
    let victim_qp = tb.connect_client(
        0,
        ConnectOptions {
            tc: TrafficClass::new(0),
            flow: FlowId(1),
            max_send_queue: cfg.victim_depth,
        },
    );
    let victim = tb.sim.add_app(Box::new(ShermanVictim::new(
        victim_qp,
        mr,
        file_base,
        victim_offset,
        tree.root_offset(),
        100,
        pairs[0].0,
        0x7000,
    )));
    tb.sim.own_qp(victim, victim_qp);

    // Attacker on client 1.
    let attacker_qp = tb.connect_client(
        1,
        ConnectOptions {
            tc: TrafficClass::new(0),
            flow: FlowId(2),
            max_send_queue: cfg.probe_depth,
        },
    );
    // The sweep starts with a discarded dummy pass over the first offset
    // so cold caches/row buffers never contaminate a real pool.
    let mut offsets = cfg.observation_offsets();
    offsets.insert(0, offsets[0]);
    let pools = Rc::new(RefCell::new(vec![Vec::new(); offsets.len()]));
    let probe = tb.sim.add_app(Box::new(SweepProbe {
        qp: attacker_qp,
        depth: cfg.probe_depth,
        mr,
        file_base,
        offsets,
        per_offset: cfg.samples_per_offset,
        warmup: cfg.warmup_per_offset,
        rephase_every: 8,
        current: 0,
        collected: 0,
        outstanding: 0,
        draining: false,
        pools: Rc::clone(&pools),
        seq: 0,
    }));
    tb.sim.own_qp(probe, attacker_qp);

    // The probe stops the loop when its sweep completes.
    tb.sim.run_until(SimTime::from_secs(10));
    let mut pools = pools.borrow().clone();
    pools.remove(0); // the dummy cold-start pass
    SamplePools {
        pools,
        victim_offset,
    }
}

/// Step ❷: one trace = per-offset means of `reps` bootstrap-sampled ULI
/// observations (deterministic given the RNG).
pub fn trace_from_pools(pools: &SamplePools, reps: usize, rng: &mut SimRng) -> Vec<f64> {
    pools
        .pools
        .iter()
        .map(|pool| {
            assert!(!pool.is_empty(), "empty sample pool");
            let mut acc = 0.0;
            for _ in 0..reps {
                let i = rng.uniform_range(0, pool.len() as u64) as usize;
                acc += pool[i];
            }
            acc / reps as f64
        })
        .collect()
}

/// The attacker's averaged trace for one run (the Fig. 13(a) curves).
pub fn mean_trace(pools: &SamplePools) -> Vec<f64> {
    pools
        .pools
        .iter()
        .map(|p| p.iter().sum::<f64>() / p.len() as f64)
        .collect()
}

/// Step ❸ evaluation: accuracy of the trained classifier plus baseline.
#[derive(Debug)]
pub struct Fig13Report {
    /// MLP test accuracy (the paper's headline is 95.6 %).
    pub mlp_accuracy: f64,
    /// 1-D CNN test accuracy (closest to the paper's ResNet18 choice).
    pub cnn_accuracy: f64,
    /// Nearest-centroid baseline accuracy.
    pub template_accuracy: f64,
    /// Confusion matrix of the MLP (`[truth][pred]`).
    pub confusion: Vec<Vec<u32>>,
    /// Mean traces per candidate, for plotting Fig. 13(a).
    pub mean_traces: Vec<(u64, Vec<f64>)>,
    /// Training set size used.
    pub train_size: usize,
    /// Test set size used.
    pub test_size: usize,
}

/// Runs the complete Fig.-13 pipeline: pools per candidate, bootstrap
/// dataset, MLP training, held-out evaluation.
pub fn evaluate(
    kind: DeviceKind,
    cfg: &SnoopConfig,
    train_per_class: usize,
    test_per_class: usize,
) -> Fig13Report {
    let dim = cfg.observation_offsets().len();
    let mut train = Dataset::new(dim);
    let mut test = Dataset::new(dim);
    let mut mean_traces = Vec::new();
    let mut rng = SimRng::derive(cfg.seed, "snoop-bootstrap");
    for (class, &cand) in cfg.candidates.iter().enumerate() {
        // Train and test traces come from *independent* attack sessions
        // (different seeds), so the classifier must generalize across
        // runs rather than memorize one session's noise.
        let train_pools = collect_pools(kind, cand, cfg);
        let test_cfg = SnoopConfig {
            seed: cfg.seed.wrapping_add(0x9E37_79B9),
            ..cfg.clone()
        };
        let test_pools = collect_pools(kind, cand, &test_cfg);
        mean_traces.push((cand, mean_trace(&train_pools)));
        for _ in 0..train_per_class {
            train.push(
                &trace_from_pools(&train_pools, cfg.reps_per_trace, &mut rng),
                class,
            );
        }
        for _ in 0..test_per_class {
            test.push(
                &trace_from_pools(&test_pools, cfg.reps_per_trace, &mut rng),
                class,
            );
        }
    }
    train.normalize_per_sample();
    test.normalize_per_sample();
    train.shuffle(cfg.seed);

    let template = TemplateClassifier::fit(&train);
    let template_accuracy = template.evaluate(&test);

    let mlp = MlpClassifier::train(
        &train,
        &TrainConfig {
            hidden: vec![64, 32],
            epochs: 40,
            ..TrainConfig::default()
        },
    );
    let (mlp_accuracy, confusion) = mlp.evaluate(&test);

    // The CNN needs enough positions for its conv/pool geometry; on the
    // coarse 17-point quick mode fall back to a smaller kernel.
    let cnn_cfg = if dim >= 64 {
        CnnConfig::default()
    } else {
        CnnConfig {
            kernel: 3,
            pool: 2,
            ..CnnConfig::default()
        }
    };
    let cnn = CnnClassifier::train(&train, &cnn_cfg);
    let cnn_accuracy = cnn.evaluate(&test);

    Fig13Report {
        mlp_accuracy,
        cnn_accuracy,
        template_accuracy,
        confusion,
        mean_traces,
        train_size: train.len(),
        test_size: test.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> SnoopConfig {
        SnoopConfig {
            step: 64, // 17 observation points instead of 257
            samples_per_offset: 40,
            warmup_per_offset: 6,
            reps_per_trace: 25,
            candidates: vec![0, 256, 512, 768],
            ..SnoopConfig::default()
        }
    }

    #[test]
    fn traces_peak_near_the_victim_offset() {
        let cfg = quick_cfg();
        let pools = collect_pools(DeviceKind::ConnectX4, 512, &cfg);
        let trace = mean_trace(&pools);
        assert_eq!(trace.len(), 17);
        // The bank-collision signature: the observation point sharing the
        // victim's 64 B token (offset 512 = index 8) reads highest.
        let peak_idx = trace
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        assert_eq!(
            peak_idx, 8,
            "ULI peak should sit at the victim's offset; trace: {trace:?}"
        );
    }

    #[test]
    fn different_candidates_produce_distinct_traces() {
        let cfg = quick_cfg();
        let a = mean_trace(&collect_pools(DeviceKind::ConnectX4, 0, &cfg));
        let b = mean_trace(&collect_pools(DeviceKind::ConnectX4, 768, &cfg));
        // Their peaks differ.
        let argmax = |t: &[f64]| {
            t.iter()
                .enumerate()
                .max_by(|x, y| x.1.partial_cmp(y.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("non-empty")
        };
        assert_ne!(argmax(&a), argmax(&b));
    }

    #[test]
    fn small_scale_classification_works() {
        let cfg = quick_cfg();
        let report = evaluate(DeviceKind::ConnectX4, &cfg, 40, 10);
        assert!(
            report.mlp_accuracy > 0.8,
            "small-scale accuracy too low: {} (template {})",
            report.mlp_accuracy,
            report.template_accuracy
        );
        assert_eq!(report.train_size, 160);
        assert_eq!(report.test_size, 40);
    }

    #[test]
    fn observation_set_matches_paper() {
        let cfg = SnoopConfig::default();
        let offsets = cfg.observation_offsets();
        assert_eq!(offsets.len(), 257, "paper uses 257 observation samples");
        assert_eq!(cfg.candidates.len(), 17, "paper uses 17 candidates");
        assert_eq!(*offsets.last().expect("non-empty"), 1024);
    }
}
