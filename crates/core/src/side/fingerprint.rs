//! §VI-A — fingerprinting shuffle/join operations of a distributed
//! database with the Grain-II priority channel (Algorithm 1, Fig. 12).
//!
//! The attacker maintains a small monitored flow against the shared
//! server. During a **shuffle** its bandwidth is depressed *plateau*-like
//! (sustained bulk traffic); during a **join** it dips *tooth*-like
//! (round-based bursts). Algorithm 1's sliding window plus
//! `CorrelationDetect` recovers which operation is running.

use crate::measure::{AddressPattern, BandwidthSampler, FlowStats, SaturatingFlow, Target};
use crate::testbed::Testbed;
use ragnar_workloads::shuffle_join::{DbConfig, DbPhase, DbVictim, PhaseLog};
use rdma_verbs::{AccessFlags, ConnectOptions, DeviceProfile, FlowId, Opcode, TrafficClass};
use sim_core::{pearson, SimDuration, SimTime, TimeSeries};
use std::cell::RefCell;
use std::rc::Rc;

/// The pattern classes Algorithm 1 distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Pattern {
    /// Sustained plateau-like depression.
    Shuffle,
    /// Tooth-like periodic dips.
    Join,
    /// Nothing detected.
    Null,
}

impl Pattern {
    /// The ground-truth label this pattern corresponds to.
    pub fn label(self) -> &'static str {
        match self {
            Pattern::Shuffle => "shuffle",
            Pattern::Join => "join",
            Pattern::Null => "idle",
        }
    }
}

/// Algorithm 1's `CorrelationDetect`: matches a bandwidth window against
/// plateau and tooth templates by Pearson correlation.
#[derive(Debug, Clone)]
pub struct CorrelationDetector {
    /// Baseline (uncontended) bandwidth of the monitored flow.
    pub baseline_bps: f64,
    /// Windows whose mean exceeds this fraction of baseline are Null.
    pub depression_threshold: f64,
    /// Join round period candidates to correlate against.
    pub tooth_periods: Vec<usize>,
    /// Minimum template correlation to accept a Join.
    pub min_correlation: f64,
    /// Minimum tooth amplitude relative to baseline to accept a Join
    /// (rejects plateau windows whose sampling quantization happens to
    /// correlate with a square wave).
    pub min_tooth_amplitude: f64,
}

impl CorrelationDetector {
    /// Creates a detector with the given baseline.
    pub fn new(baseline_bps: f64) -> Self {
        CorrelationDetector {
            baseline_bps,
            depression_threshold: 0.85,
            tooth_periods: vec![4, 6, 8, 10, 12, 16],
            min_correlation: 0.55,
            min_tooth_amplitude: 0.3,
        }
    }

    /// Classifies one window of bandwidth samples.
    pub fn detect(&self, window: &[f64]) -> Pattern {
        if window.len() < 4 {
            return Pattern::Null;
        }
        let mean = window.iter().sum::<f64>() / window.len() as f64;
        let hi = window.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lo = window.iter().cloned().fold(f64::INFINITY, f64::min);
        let thr = self.depression_threshold * self.baseline_bps;
        // Nothing in the window is depressed: no operation running.
        if lo > thr {
            return Pattern::Null;
        }
        // Tooth = dips that *recover* to baseline within the window with
        // real amplitude; plateau = sustained depression.
        let amplitude_ok = (hi - lo) > self.min_tooth_amplitude * self.baseline_bps && hi > thr;
        let mut best_r: f64 = 0.0;
        for &period in &self.tooth_periods {
            if period >= window.len() {
                continue;
            }
            for phase in 0..period {
                let template: Vec<f64> = (0..window.len())
                    .map(|i| {
                        if ((i + phase) % period) < period / 2 {
                            1.0
                        } else {
                            -1.0
                        }
                    })
                    .collect();
                let r = pearson(window, &template);
                best_r = best_r.max(r);
            }
        }
        if amplitude_ok && best_r >= self.min_correlation {
            Pattern::Join
        } else if mean < thr {
            Pattern::Shuffle
        } else {
            Pattern::Null
        }
    }
}

/// Configuration of the fingerprinting experiment.
#[derive(Debug, Clone)]
pub struct FingerprintConfig {
    /// Bandwidth sampling interval (Algorithm 1's monitoring cycle).
    pub sample_interval: SimDuration,
    /// Sliding window length `T_window` in samples.
    pub window_samples: usize,
    /// Victim phase script.
    pub phases: Vec<DbPhase>,
    /// Seed.
    pub seed: u64,
}

impl Default for FingerprintConfig {
    fn default() -> Self {
        FingerprintConfig {
            sample_interval: SimDuration::from_micros(10),
            window_samples: 12,
            phases: vec![
                DbPhase::Idle(SimDuration::from_micros(200)),
                DbPhase::Shuffle(SimDuration::from_micros(400)),
                DbPhase::Idle(SimDuration::from_micros(200)),
                DbPhase::Join {
                    rounds: 8,
                    burst: SimDuration::from_micros(30),
                    gap: SimDuration::from_micros(30),
                },
                DbPhase::Idle(SimDuration::from_micros(200)),
            ],
            seed: 0xF12,
        }
    }
}

/// Everything the experiment produced.
#[derive(Debug)]
pub struct FingerprintRun {
    /// The attacker's raw bandwidth trace (the Fig. 12 curve).
    pub monitor: TimeSeries,
    /// Per-window detections `(window end, pattern)`.
    pub detections: Vec<(SimTime, Pattern)>,
    /// Ground-truth phase log from the victim.
    pub truth: PhaseLog,
    /// Fraction of windows classified consistently with ground truth.
    pub accuracy: f64,
}

/// Runs the full §VI-A experiment on `kind`.
pub fn run(kind: rdma_verbs::DeviceKind, cfg: &FingerprintConfig) -> FingerprintRun {
    let profile = DeviceProfile::preset(kind);
    let mut tb = Testbed::new(profile, 2, cfg.seed);
    let mr_victim = tb.server_mr(8 << 20, AccessFlags::remote_all());
    let mr_attacker = tb.server_mr(1 << 21, AccessFlags::remote_all());

    // Victim: the database client on client 0.
    // A shallow send queue keeps the victim's egress backlog small, so
    // phase transitions are visible at the timescale of a join round
    // (deep queues would smear ~100 µs of buffered bulk data over every
    // gap).
    let victim_qp = tb.connect_client(
        0,
        ConnectOptions {
            tc: TrafficClass::new(0),
            flow: FlowId(1),
            max_send_queue: 4,
        },
    );
    let log = Rc::new(RefCell::new(PhaseLog::default()));
    let victim = tb.sim.add_app(Box::new(DbVictim::new(
        victim_qp,
        DbConfig {
            shuffle_msg_len: 16 * 1024,
            join_msg_len: 4 * 1024,
            rkey: mr_victim.key,
            remote_base: mr_victim.base_va,
            remote_len: mr_victim.len,
        },
        cfg.phases.clone(),
        Rc::clone(&log),
    )));
    tb.sim.own_qp(victim, victim_qp);

    // Attacker: small monitored flow on client 1 (Algorithm 1 line 2).
    let attacker_qp = tb.connect_client(
        1,
        ConnectOptions {
            tc: TrafficClass::new(1),
            flow: FlowId(2),
            max_send_queue: 4,
        },
    );
    let stats = FlowStats::new(false);
    let paused = Rc::new(RefCell::new(false));
    let flow = tb.sim.add_app(Box::new(SaturatingFlow::new(
        vec![attacker_qp],
        Opcode::Read,
        1024,
        AddressPattern::Fixed(Target {
            key: mr_attacker.key,
            addr: mr_attacker.addr(0),
        }),
        0x5000,
        Rc::clone(&stats),
        paused,
    )));
    tb.sim.own_qp(flow, attacker_qp);

    let series = Rc::new(RefCell::new(TimeSeries::new()));
    tb.sim.add_app(Box::new(BandwidthSampler::new(
        Rc::clone(&stats),
        cfg.sample_interval,
        Rc::clone(&series),
    )));

    let total: SimDuration = cfg.phases.iter().map(DbPhase::duration).sum();
    tb.sim
        .run_until(SimTime::ZERO + total + cfg.sample_interval * 2);

    let monitor = series.borrow().clone();
    let truth = log.borrow().clone();

    // Calibrate the baseline from the leading idle phase.
    let first_idle_end = truth
        .intervals
        .first()
        .map(|&(_, _, e)| e)
        .unwrap_or(SimTime::ZERO);
    let baseline: Vec<f64> = monitor
        .points()
        .iter()
        .filter(|&&(t, _)| t <= first_idle_end)
        .map(|&(_, v)| v)
        .collect();
    let baseline_bps = if baseline.is_empty() {
        1.0
    } else {
        baseline.iter().sum::<f64>() / baseline.len() as f64
    };
    let detector = CorrelationDetector::new(baseline_bps);

    // Algorithm 1's sliding-window loop, replayed over the recorded
    // series.
    let points = monitor.points();
    let mut detections = Vec::new();
    let mut correct = 0usize;
    let mut judged = 0usize;
    for end in cfg.window_samples..points.len() {
        let window: Vec<f64> = points[end - cfg.window_samples..end]
            .iter()
            .map(|&(_, v)| v)
            .collect();
        let at = points[end - 1].0;
        let p = detector.detect(&window);
        detections.push((at, p));
        // Score a window only when it lies entirely inside one
        // ground-truth interval (boundary windows mix phases).
        let start = points[end - cfg.window_samples].0;
        let label_start = truth.label_at(start);
        let label_end = truth.label_at(at);
        if let (Some(a), Some(b)) = (label_start, label_end) {
            if a == b {
                judged += 1;
                if p.label() == a {
                    correct += 1;
                }
            }
        }
    }
    let accuracy = if judged == 0 {
        0.0
    } else {
        correct as f64 / judged as f64
    };
    FingerprintRun {
        monitor,
        detections,
        truth,
        accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_verbs::DeviceKind;

    #[test]
    fn detector_distinguishes_shapes() {
        let det = CorrelationDetector::new(100.0);
        // Plateau: uniformly depressed.
        let plateau = vec![40.0; 16];
        assert_eq!(det.detect(&plateau), Pattern::Shuffle);
        // Tooth: alternating full/depressed.
        let tooth: Vec<f64> = (0..16)
            .map(|i| if (i / 4) % 2 == 0 { 95.0 } else { 30.0 })
            .collect();
        assert_eq!(det.detect(&tooth), Pattern::Join);
        // Quiet: no depression.
        let quiet = vec![98.0; 16];
        assert_eq!(det.detect(&quiet), Pattern::Null);
    }

    #[test]
    fn fingerprints_shuffle_and_join_end_to_end() {
        let run = run(DeviceKind::ConnectX4, &FingerprintConfig::default());
        assert!(
            run.accuracy > 0.7,
            "fingerprinting accuracy too low: {}",
            run.accuracy
        );
        // Both operations must actually be detected somewhere.
        assert!(run.detections.iter().any(|&(_, p)| p == Pattern::Shuffle));
        assert!(run.detections.iter().any(|&(_, p)| p == Pattern::Join));
        assert!(run.detections.iter().any(|&(_, p)| p == Pattern::Null));
    }

    #[test]
    fn shuffle_depresses_the_monitor() {
        let run = run(DeviceKind::ConnectX4, &FingerprintConfig::default());
        // Mean bandwidth inside shuffle < mean inside leading idle.
        let idle_end = run.truth.intervals[0].2;
        let (shuffle_start, shuffle_end) = run
            .truth
            .intervals
            .iter()
            .find(|&&(l, _, _)| l == "shuffle")
            .map(|&(_, s, e)| (s, e))
            .expect("shuffle phase present");
        let mean_in = |from, to| {
            run.monitor
                .window_mean(from, to)
                .expect("samples in window")
        };
        let idle_bw = mean_in(SimTime::ZERO + SimDuration::from_micros(30), idle_end);
        let shuffle_bw = mean_in(shuffle_start, shuffle_end);
        assert!(
            shuffle_bw < 0.9 * idle_bw,
            "shuffle should depress the monitored flow: {shuffle_bw} vs {idle_bw}"
        );
    }
}
