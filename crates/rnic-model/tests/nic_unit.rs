//! Direct unit tests of the `Rnic` state machine's edge cases (the happy
//! paths are covered end-to-end through `rdma-verbs`).

use rnic_model::{
    AccessFlags, DeviceProfile, MrEntry, MrKey, NicAction, PdId, PostError, QpConfig, QpNum,
    RecvWqe, Rnic, TrafficClass, Wqe,
};
use rnic_model::{FlowId, HostId, Opcode};
use sim_core::SimTime;

fn nic() -> Rnic {
    let mut n = Rnic::new(HostId(0), DeviceProfile::connectx5(), 42);
    n.create_qp(
        QpNum(1),
        QpConfig {
            pd: PdId(1),
            tc: TrafficClass::new(0),
            flow: FlowId(1),
            peer_host: HostId(1),
            peer_qp: QpNum(2),
            max_send_queue: 2,
        },
    );
    n
}

fn wqe(wr_id: u64) -> Wqe {
    Wqe {
        wr_id,
        opcode: Opcode::Read,
        len: 64,
        local_addr: 0x1000,
        remote_addr: 0x20_0000,
        rkey: MrKey(9),
        atomic_args: (0, 0),
        posted_at: SimTime::ZERO,
        seq: 0,
    }
}

#[test]
fn post_to_unknown_qp_is_rejected() {
    let mut n = nic();
    let err = n
        .post_send(SimTime::ZERO, QpNum(99), wqe(1))
        .expect_err("unknown QP");
    assert_eq!(err, PostError::UnknownQp);
    assert_eq!(
        n.post_recv(
            QpNum(99),
            RecvWqe {
                wr_id: 1,
                local_addr: 0,
                len: 64
            }
        )
        .expect_err("unknown QP"),
        PostError::UnknownQp
    );
}

#[test]
fn send_queue_capacity_is_strict() {
    let mut n = nic();
    assert!(n.post_send(SimTime::ZERO, QpNum(1), wqe(1)).is_ok());
    assert!(n.post_send(SimTime::ZERO, QpNum(1), wqe(2)).is_ok());
    assert_eq!(
        n.post_send(SimTime::ZERO, QpNum(1), wqe(3))
            .expect_err("full"),
        PostError::SendQueueFull
    );
    assert_eq!(n.outstanding(QpNum(1)), Some(2));
    assert_eq!(n.outstanding(QpNum(7)), None);
}

#[test]
fn post_returns_a_wqe_fetch_schedule() {
    let mut n = nic();
    let actions = n
        .post_send(SimTime::from_micros(3), QpNum(1), wqe(1))
        .expect("post");
    assert_eq!(actions.len(), 1);
    match &actions[0] {
        NicAction::Schedule { at, .. } => {
            assert!(*at > SimTime::from_micros(3), "fetch takes PCIe time");
        }
        other => panic!("expected Schedule, got {other:?}"),
    }
    // WQE fetch and PCIe byte accounting happened.
    assert_eq!(n.counters().wqes_fetched, 1);
    assert!(n.counters().pcie_bytes >= 64);
}

#[test]
#[should_panic(expected = "already exists")]
fn duplicate_qp_creation_panics() {
    let mut n = nic();
    n.create_qp(
        QpNum(1),
        QpConfig {
            pd: PdId(1),
            tc: TrafficClass::new(0),
            flow: FlowId(1),
            peer_host: HostId(1),
            peer_qp: QpNum(2),
            max_send_queue: 2,
        },
    );
}

#[test]
#[should_panic(expected = "already registered")]
fn duplicate_mr_registration_panics() {
    let mut n = nic();
    let entry = MrEntry {
        key: MrKey(5),
        pd: PdId(1),
        base_va: 1 << 21,
        len: 4096,
        access: AccessFlags::remote_all(),
    };
    n.register_mr(entry);
    n.register_mr(entry);
}

#[test]
fn mr_deregistration_is_idempotent() {
    let mut n = nic();
    n.register_mr(MrEntry {
        key: MrKey(5),
        pd: PdId(1),
        base_va: 1 << 21,
        len: 4096,
        access: AccessFlags::remote_all(),
    });
    assert!(n.deregister_mr(MrKey(5)));
    assert!(!n.deregister_mr(MrKey(5)));
}

#[test]
fn ets_weights_and_pause_reach_the_scheduler() {
    let mut n = nic();
    let mut w = [1u32; 8];
    w[2] = 5;
    n.set_ets_weights(w);
    // Pausing must not panic and is observable through behaviour tested
    // in the arbiter's own suite; here we only exercise the plumbing.
    n.pause_tc(TrafficClass::new(2), SimTime::from_micros(10));
}

#[test]
fn noc_activation_counter_starts_at_zero() {
    let n = nic();
    assert_eq!(n.noc_activations(), 0);
    assert_eq!(n.host(), HostId(0));
    assert_eq!(n.profile().kind, rnic_model::DeviceKind::ConnectX5);
    assert_eq!(n.tpu().mr_count(), 0);
}
