//! Property-based tests of the RNIC model's invariants.

use proptest::prelude::*;
use rnic_model::{
    AccessFlags, DeviceProfile, MrEntry, MrKey, NakReason, Opcode, PdId, SetAssocCache,
    TranslationUnit,
};
use sim_core::{SimRng, SimTime};

fn tpu_with_mr(len: u64) -> TranslationUnit {
    let mut profile = DeviceProfile::connectx4();
    profile.tpu_jitter_sigma = sim_core::SimDuration::ZERO;
    let mut tpu = TranslationUnit::new(&profile);
    tpu.register_mr(MrEntry {
        key: MrKey(1),
        pd: PdId(0),
        base_va: 0x20_0000,
        len,
        access: AccessFlags::remote_all(),
    });
    tpu
}

proptest! {
    /// Validation accepts exactly the in-bounds, permitted accesses.
    #[test]
    fn tpu_validation_is_exact(addr in 0u64..0x60_0000, len in 1u64..16_384) {
        let mr_len = 2 * 1024 * 1024;
        let tpu = tpu_with_mr(mr_len);
        let base = 0x20_0000u64;
        let result = tpu.validate(PdId(0), Opcode::Read, MrKey(1), addr, len);
        let in_bounds = addr >= base && addr + len <= base + mr_len;
        prop_assert_eq!(result.is_ok(), in_bounds,
            "addr {:#x} len {} in_bounds {}", addr, len, in_bounds);
        if !in_bounds {
            prop_assert_eq!(result.unwrap_err(), NakReason::OutOfBounds);
        }
    }

    /// TPU service never reorders within one bank: reservations are
    /// non-overlapping and monotone.
    #[test]
    fn tpu_bank_reservations_never_overlap(
        offsets in prop::collection::vec(0u64..(1 << 20), 2..60)
    ) {
        let mut tpu = tpu_with_mr(2 * 1024 * 1024);
        let mut rng = SimRng::seed_from(1);
        let now = SimTime::from_micros(1);
        let mut last_end_per_bank = std::collections::HashMap::new();
        for off in offsets {
            let off = off & !7; // keep 8-aligned for simplicity
            let access = tpu
                .access(now, &mut rng, PdId(0), Opcode::Read, MrKey(1), 0x20_0000 + off, 8)
                .expect("in bounds");
            let bank = tpu.bank_of(0x20_0000 + off);
            if let Some(&end) = last_end_per_bank.get(&bank) {
                prop_assert!(access.reservation.start >= end,
                    "bank {} reservation overlapped", bank);
            }
            last_end_per_bank.insert(bank, access.reservation.end);
        }
    }

    /// The breakdown total always bounds the reservation length from
    /// below zero, and tokens spanned match the arithmetic.
    #[test]
    fn tpu_breakdown_consistent(addr_off in 0u64..(1 << 20), len in 1u64..8192) {
        let mut tpu = tpu_with_mr(2 * 1024 * 1024);
        let mut rng = SimRng::seed_from(2);
        let addr = 0x20_0000 + (addr_off % ((2 << 20) - 8192));
        let access = tpu
            .access(SimTime::ZERO, &mut rng, PdId(0), Opcode::Read, MrKey(1), addr, len)
            .expect("in bounds");
        let first = addr / 64;
        let last = (addr + len - 1) / 64;
        prop_assert_eq!(access.breakdown.tokens_spanned as u64, last - first + 1);
        prop_assert_eq!(access.mr_offset, addr - 0x20_0000);
    }

    /// A read-only MR refuses writes and atomics for any address.
    #[test]
    fn read_only_mr_never_writable(addr_off in 0u64..(1 << 20), len in 1u64..4096) {
        let mut profile = DeviceProfile::connectx5();
        profile.tpu_jitter_sigma = sim_core::SimDuration::ZERO;
        let mut tpu = TranslationUnit::new(&profile);
        tpu.register_mr(MrEntry {
            key: MrKey(7),
            pd: PdId(3),
            base_va: 1 << 21,
            len: 2 << 20,
            access: AccessFlags::remote_read_only(),
        });
        let addr = (1 << 21) + (addr_off % ((2 << 20) - 4096));
        for op in [Opcode::Write, Opcode::AtomicFetchAdd, Opcode::AtomicCmpSwap] {
            let r = tpu.validate(PdId(3), op, MrKey(7), addr, len.min(8));
            prop_assert_eq!(r.unwrap_err(), NakReason::AccessDenied);
        }
        prop_assert!(tpu.validate(PdId(3), Opcode::Read, MrKey(7), addr, len).is_ok());
    }

    /// Within one cache set, residency after any access sequence
    /// matches a reference MRU-list LRU model.
    #[test]
    fn cache_matches_reference_lru(picks in prop::collection::vec(0usize..8, 1..300)) {
        let entries = 64;
        let ways = 4;
        let mut cache = SetAssocCache::new(entries, ways);
        // All these tags live in the same set as tag 0 by construction.
        let mut same_set = vec![0u64];
        same_set.extend(cache.eviction_set(0, 7));
        let mut reference: Vec<u64> = Vec::new(); // MRU first
        let mut hits_ref = 0u64;
        for pick in picks {
            let tag = same_set[pick];
            let hit_ref = if let Some(pos) = reference.iter().position(|&t| t == tag) {
                reference.remove(pos);
                reference.insert(0, tag);
                true
            } else {
                reference.insert(0, tag);
                reference.truncate(ways);
                false
            };
            if hit_ref {
                hits_ref += 1;
            }
            let hit_impl = cache.access(tag);
            prop_assert_eq!(hit_impl, hit_ref, "divergence on tag {}", tag);
        }
        prop_assert_eq!(cache.hits(), hits_ref);
        // Final residency matches, too.
        for &t in &reference {
            prop_assert!(cache.probe(t), "reference says {} resident", t);
        }
    }

    /// Eviction sets of any size really conflict with the victim.
    #[test]
    fn eviction_sets_conflict(victim in 0u64..10_000, extra in 0usize..8) {
        let ways = 8;
        let cache = SetAssocCache::new(1024, ways);
        let set = cache.eviction_set(victim, ways + extra);
        prop_assert_eq!(set.len(), ways + extra);
        let mut fresh = SetAssocCache::new(1024, ways);
        fresh.access(victim);
        for &t in &set {
            fresh.access(t);
        }
        prop_assert!(!fresh.probe(victim), "eviction set failed for {}", victim);
    }

    /// Time-scaling preserves every latency and scales every rate.
    #[test]
    fn profile_scaling_invariants(factor_pct in 1u32..=100) {
        let factor = f64::from(factor_pct) / 100.0;
        let base = DeviceProfile::connectx6();
        let scaled = base.time_scaled(factor);
        prop_assert_eq!(scaled.pcie_latency, base.pcie_latency);
        prop_assert_eq!(scaled.wire_propagation, base.wire_propagation);
        prop_assert_eq!(scaled.tpu_row_bytes, base.tpu_row_bytes);
        prop_assert_eq!(scaled.tpu_banks, base.tpu_banks);
        let expect = (base.port_rate_bps as f64 * factor).round() as u64;
        prop_assert_eq!(scaled.port_rate_bps, expect);
        // Service times scale inversely (within rounding).
        let svc = scaled.tx_pu_service.as_picos() as f64;
        let want = base.tx_pu_service.as_picos() as f64 / factor;
        prop_assert!((svc - want).abs() <= 1.0, "{svc} vs {want}");
    }
}
