//! The on-chip-network activation heuristic behind Key Finding 2.
//!
//! §IV-B observes that *contention of small RDMA Writes can lead to an
//! abnormal bandwidth increment in both traffic flows*, which the paper
//! attributes to NoC activation. We model this as an auxiliary processing
//! lane that engages only when **multiple distinct flows** are actively
//! posting small writes within a short window: a single flow never
//! triggers it (so the solo baseline is slower), but two contending
//! small-write flows unlock it and their combined throughput exceeds 200%
//! of the solo flow.

use crate::types::FlowId;
use sim_core::{SimDuration, SimTime};

/// Tracks small-write flow activity and reports whether the auxiliary
/// NoC lane is engaged.
#[derive(Debug, Clone)]
pub struct NocActivation {
    small_threshold: u64,
    flows_to_activate: usize,
    window: SimDuration,
    /// (flow, last small-write time), tiny working set.
    recent: Vec<(FlowId, SimTime)>,
    activations: u64,
    active: bool,
}

impl NocActivation {
    /// Creates the tracker.
    ///
    /// * `small_threshold` — messages at or below this size count.
    /// * `flows_to_activate` — distinct active flows required.
    /// * `window` — how long a flow stays "active" after its last post.
    pub fn new(small_threshold: u64, flows_to_activate: usize, window: SimDuration) -> Self {
        NocActivation {
            small_threshold,
            flows_to_activate,
            window,
            recent: Vec::new(),
            activations: 0,
            active: false,
        }
    }

    /// Notes a posted write of `len` bytes on `flow` at `now`.
    pub fn note_write(&mut self, now: SimTime, flow: FlowId, len: u64) {
        if len > self.small_threshold {
            return;
        }
        if let Some(entry) = self.recent.iter_mut().find(|(f, _)| *f == flow) {
            entry.1 = now;
        } else {
            self.recent.push((flow, now));
        }
    }

    /// True if the auxiliary lane is engaged at `now`.
    pub fn is_active(&mut self, now: SimTime) -> bool {
        let window = self.window;
        self.recent
            .retain(|&(_, t)| now.saturating_since(t) <= window);
        let next = self.recent.len() >= self.flows_to_activate;
        if next && !self.active {
            self.activations += 1;
        }
        self.active = next;
        next
    }

    /// How many times the lane has switched on.
    pub fn activation_count(&self) -> u64 {
        self.activations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> NocActivation {
        NocActivation::new(256, 2, SimDuration::from_micros(5))
    }

    #[test]
    fn single_flow_never_activates() {
        let mut n = tracker();
        for i in 0..100 {
            n.note_write(SimTime::from_nanos(i * 10), FlowId(1), 64);
        }
        assert!(!n.is_active(SimTime::from_micros(1)));
    }

    #[test]
    fn two_small_write_flows_activate() {
        let mut n = tracker();
        n.note_write(SimTime::from_nanos(0), FlowId(1), 64);
        n.note_write(SimTime::from_nanos(10), FlowId(2), 128);
        assert!(n.is_active(SimTime::from_nanos(20)));
        assert_eq!(n.activation_count(), 1);
    }

    #[test]
    fn large_writes_do_not_count() {
        let mut n = tracker();
        n.note_write(SimTime::ZERO, FlowId(1), 64);
        n.note_write(SimTime::ZERO, FlowId(2), 2048);
        assert!(!n.is_active(SimTime::from_nanos(1)));
    }

    #[test]
    fn activity_expires_after_window() {
        let mut n = tracker();
        n.note_write(SimTime::ZERO, FlowId(1), 64);
        n.note_write(SimTime::ZERO, FlowId(2), 64);
        assert!(n.is_active(SimTime::from_micros(1)));
        assert!(!n.is_active(SimTime::from_micros(20)));
        // Re-activation counts again.
        n.note_write(SimTime::from_micros(21), FlowId(1), 64);
        n.note_write(SimTime::from_micros(21), FlowId(2), 64);
        assert!(n.is_active(SimTime::from_micros(22)));
        assert_eq!(n.activation_count(), 2);
    }
}
