//! A sparse byte-addressable host-memory model.
//!
//! Each simulated host owns one [`HostMemory`]; the verbs layer allocates
//! MR backing store from it and applications observe RDMA'd data through
//! it. Pages materialize on first touch so multi-gigabyte address spaces
//! cost nothing until used.

use sim_core::FxHashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

/// Sparse host DRAM.
///
/// # Examples
///
/// ```
/// use rnic_model::HostMemory;
///
/// let mut mem = HostMemory::new();
/// mem.write(0x200000, b"hello");
/// assert_eq!(mem.read(0x200000, 5), b"hello");
/// ```
#[derive(Debug, Default)]
pub struct HostMemory {
    pages: FxHashMap<u64, Box<[u8]>>,
}

impl HostMemory {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    fn page_mut(&mut self, page: u64) -> &mut [u8] {
        self.pages
            .entry(page)
            .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice())
    }

    /// Writes `data` starting at virtual address `addr`.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        let mut offset = 0usize;
        while offset < data.len() {
            let va = addr + offset as u64;
            let page = va >> PAGE_SHIFT;
            let in_page = (va & (PAGE_SIZE - 1)) as usize;
            let n = (PAGE_SIZE as usize - in_page).min(data.len() - offset);
            self.page_mut(page)[in_page..in_page + n].copy_from_slice(&data[offset..offset + n]);
            offset += n;
        }
    }

    /// Reads `len` bytes starting at `addr` (untouched pages read as zero).
    pub fn read(&self, addr: u64, len: u64) -> Vec<u8> {
        let mut out = vec![0u8; len as usize];
        let mut offset = 0usize;
        while offset < out.len() {
            let va = addr + offset as u64;
            let page = va >> PAGE_SHIFT;
            let in_page = (va & (PAGE_SIZE - 1)) as usize;
            let n = (PAGE_SIZE as usize - in_page).min(out.len() - offset);
            if let Some(p) = self.pages.get(&page) {
                out[offset..offset + n].copy_from_slice(&p[in_page..in_page + n]);
            }
            offset += n;
        }
        out
    }

    /// Reads a little-endian u64 at `addr`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let bytes = self.read(addr, 8);
        u64::from_le_bytes(bytes.try_into().expect("8 bytes"))
    }

    /// Writes a little-endian u64 at `addr`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write(addr, &value.to_le_bytes());
    }

    /// Atomically fetches the u64 at `addr` and adds `delta`; returns the
    /// original value.
    pub fn fetch_add_u64(&mut self, addr: u64, delta: u64) -> u64 {
        let old = self.read_u64(addr);
        self.write_u64(addr, old.wrapping_add(delta));
        old
    }

    /// Atomically compares the u64 at `addr` with `expect` and swaps in
    /// `new` on match; returns the original value.
    pub fn compare_swap_u64(&mut self, addr: u64, expect: u64, new: u64) -> u64 {
        let old = self.read_u64(addr);
        if old == expect {
            self.write_u64(addr, new);
        }
        old
    }

    /// Number of materialized 4 KiB pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_page_write_read() {
        let mut m = HostMemory::new();
        let addr = PAGE_SIZE - 3;
        let data: Vec<u8> = (0..10).collect();
        m.write(addr, &data);
        assert_eq!(m.read(addr, 10), data);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn untouched_reads_zero() {
        let m = HostMemory::new();
        assert_eq!(m.read(0xDEAD_0000, 4), vec![0; 4]);
    }

    #[test]
    fn u64_round_trip() {
        let mut m = HostMemory::new();
        m.write_u64(0x1000, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.read_u64(0x1000), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn fetch_add_semantics() {
        let mut m = HostMemory::new();
        m.write_u64(0x40, 10);
        assert_eq!(m.fetch_add_u64(0x40, 5), 10);
        assert_eq!(m.read_u64(0x40), 15);
    }

    #[test]
    fn compare_swap_semantics() {
        let mut m = HostMemory::new();
        m.write_u64(0x40, 10);
        assert_eq!(m.compare_swap_u64(0x40, 10, 99), 10);
        assert_eq!(m.read_u64(0x40), 99);
        assert_eq!(m.compare_swap_u64(0x40, 10, 7), 99);
        assert_eq!(m.read_u64(0x40), 99, "failed CAS must not write");
    }
}
