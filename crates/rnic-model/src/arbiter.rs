//! Egress port scheduler: the merged "Tx arbiter / Rx arbiter" of the
//! paper's Fig. 3.
//!
//! Locally-sourced request packets (the logical **Tx arbiter**) take
//! strict priority over responder-generated packets — read responses,
//! atomic responses and ACKs (the logical **Rx arbiter**). This is Key
//! Finding 3 of §IV-B. Within each priority group, traffic classes share
//! the port by deficit-weighted round robin using the ETS weights
//! configured through the `mlnx_qos` equivalent.
//!
//! Queues hold [`EgressItem`]s — a packet [handle](PacketHandle) plus
//! the few header fields the arbiter's grant decisions read (wire size,
//! traffic class, bulk-write eligibility) — so arbitration never moves
//! or touches the full packet, which stays in the
//! [`PacketArena`](crate::PacketArena) from allocation to delivery.

use crate::arena::{PacketArena, PacketHandle};
use crate::packet::{Packet, PacketKind};
use crate::types::{FlowId, TrafficClass};
use sim_core::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Which logical arbiter a packet goes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EgressClass {
    /// Locally-initiated requests (higher priority, Key Finding 3).
    TxRequest,
    /// Responder-generated packets (lower priority).
    RxResponse,
}

/// One queued packet, reduced to the handle plus the header fields the
/// scheduler's grant logic reads.
#[derive(Debug, Clone, Copy)]
pub struct EgressItem {
    /// The queued packet.
    pub pkt: PacketHandle,
    /// Cached [`Packet::wire_bytes`].
    pub wire_bytes: u64,
    /// Payload length in bytes (for per-flow accounting).
    pub payload_len: u32,
    /// Traffic class (selects the DWRR queue).
    pub tc: TrafficClass,
    /// Application flow label (for per-flow accounting).
    pub flow: FlowId,
    /// True for write segments — the bulk-burst candidates.
    pub is_write_seg: bool,
    /// Total message length (bulk-burst threshold check).
    pub total_len: u64,
}

impl EgressItem {
    /// Captures the grant-relevant header fields of `pkt` under handle
    /// `h`.
    pub fn of(pkt: &Packet, h: PacketHandle) -> EgressItem {
        EgressItem {
            pkt: h,
            wire_bytes: pkt.wire_bytes(),
            payload_len: u32::try_from(pkt.payload.len()).expect("payload fits u32"),
            tc: pkt.tc,
            flow: pkt.flow,
            is_write_seg: matches!(pkt.kind, PacketKind::WriteSeg),
            total_len: pkt.total_len,
        }
    }
}

#[derive(Debug)]
struct Group {
    queues: [VecDeque<EgressItem>; TrafficClass::COUNT],
    deficit: [i64; TrafficClass::COUNT],
    cursor: usize,
}

impl Group {
    fn new() -> Self {
        Group {
            queues: Default::default(),
            deficit: [0; TrafficClass::COUNT],
            cursor: 0,
        }
    }

    fn is_empty(&self, paused_until: &[SimTime; TrafficClass::COUNT], now: SimTime) -> bool {
        self.queues
            .iter()
            .enumerate()
            .all(|(tc, q)| q.is_empty() || paused_until[tc] > now)
    }

    fn depth(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Classic DWRR: sweep classes from the cursor, topping up deficits by
    /// one quantum per full pass, until some head packet fits.
    fn grant(
        &mut self,
        weights: &[u32; TrafficClass::COUNT],
        paused_until: &[SimTime; TrafficClass::COUNT],
        now: SimTime,
    ) -> Option<EgressItem> {
        if self.is_empty(paused_until, now) {
            return None;
        }
        // Bounded: each pass adds ≥ QUANTUM_UNIT × weight ≥ 64 bytes of
        // deficit to some eligible class, and packets are ≤ MTU+headers.
        const QUANTUM_UNIT: i64 = 256;
        loop {
            for step in 0..TrafficClass::COUNT {
                let tc = (self.cursor + step) % TrafficClass::COUNT;
                if self.queues[tc].is_empty() || paused_until[tc] > now {
                    continue;
                }
                let need = self.queues[tc]
                    .front()
                    .map(|p| p.wire_bytes as i64)
                    .unwrap_or(0);
                if self.deficit[tc] >= need {
                    self.deficit[tc] -= need;
                    let item = self.queues[tc].pop_front();
                    if self.queues[tc].is_empty() {
                        // Idle classes don't accumulate deficit.
                        self.deficit[tc] = 0;
                    }
                    self.cursor = tc;
                    return item;
                }
                self.deficit[tc] += QUANTUM_UNIT * i64::from(weights[tc].max(1));
            }
            self.cursor = (self.cursor + 1) % TrafficClass::COUNT;
        }
    }
}

/// The egress port scheduler of one RNIC.
#[derive(Debug)]
pub struct EgressScheduler {
    rate_bps: u64,
    weights: [u32; TrafficClass::COUNT],
    tx: Group,
    rx: Group,
    paused_until: [SimTime; TrafficClass::COUNT],
    busy: bool,
    granted_packets: u64,
    granted_bytes: u64,
    /// Bulk-write burst mode (Key Finding 1): once a non-inline write
    /// segment is granted, up to `bulk_burst` further write segments of
    /// the same traffic class are granted back-to-back, bypassing DWRR.
    bulk_burst: u32,
    bulk_threshold: u64,
    burst_state: Option<(usize, u32)>,
    /// Ablation knob: when false, Tx and Rx groups alternate instead of
    /// Tx taking 3:1 priority (disables Key Finding 3).
    tx_strict_priority: bool,
    rr_toggle: bool,
    tx_streak: u32,
}

impl EgressScheduler {
    /// Creates a scheduler for a port at `rate_bps`, with equal ETS
    /// weights.
    ///
    /// # Panics
    ///
    /// Panics if `rate_bps` is zero.
    pub fn new(rate_bps: u64) -> Self {
        assert!(rate_bps > 0, "port rate must be positive");
        EgressScheduler {
            rate_bps,
            weights: [1; TrafficClass::COUNT],
            tx: Group::new(),
            rx: Group::new(),
            paused_until: [SimTime::ZERO; TrafficClass::COUNT],
            busy: false,
            granted_packets: 0,
            granted_bytes: 0,
            bulk_burst: 0,
            bulk_threshold: u64::MAX,
            burst_state: None,
            tx_strict_priority: true,
            rr_toggle: false,
            tx_streak: 0,
        }
    }

    /// Ablation knob for Key Finding 3: `false` makes the Tx and Rx
    /// groups share the port round-robin instead of Tx-strict.
    pub fn set_tx_strict_priority(&mut self, strict: bool) {
        self.tx_strict_priority = strict;
    }

    /// Enables bulk-write burst grants: writes with a total message length
    /// of at least `threshold` bytes pull up to `burst` same-class write
    /// segments through the port back-to-back. This is the arbiter quirk
    /// behind the Fig.-4 crossover (Key Finding 1).
    pub fn set_bulk_burst(&mut self, burst: u32, threshold: u64) {
        self.bulk_burst = burst;
        self.bulk_threshold = threshold;
    }

    /// Applies ETS bandwidth-share weights (the `mlnx_qos` ETS mode of the
    /// paper's setup). Zero weights are treated as 1.
    pub fn set_ets_weights(&mut self, weights: [u32; TrafficClass::COUNT]) {
        self.weights = weights;
    }

    /// Current ETS weights.
    pub fn ets_weights(&self) -> [u32; TrafficClass::COUNT] {
        self.weights
    }

    /// Pauses a traffic class until `until` (PFC hook for the defense
    /// crate).
    pub fn pause(&mut self, tc: TrafficClass, until: SimTime) {
        self.paused_until[tc.index()] = until;
    }

    /// Enqueues a packet into the given logical arbiter.
    pub fn enqueue(&mut self, class: EgressClass, item: EgressItem) {
        let tc = item.tc.index();
        match class {
            EgressClass::TxRequest => self.tx.queues[tc].push_back(item),
            EgressClass::RxResponse => self.rx.queues[tc].push_back(item),
        }
    }

    /// Moves every still-queued packet from one arena to another,
    /// patching the queued handles in place. Parallel engines use this
    /// when a NIC crosses a worker boundary: packets waiting on
    /// arbitration must travel with the NIC, since the arena they were
    /// allocated in stays behind. Queue order, deficit state and burst
    /// state are untouched, so grant decisions after the move are
    /// bit-identical.
    pub fn rehome(&mut self, from: &mut PacketArena, to: &mut PacketArena) {
        for group in [&mut self.tx, &mut self.rx] {
            for q in &mut group.queues {
                for item in q.iter_mut() {
                    let pkt = from.take(item.pkt);
                    item.pkt = to.insert(pkt);
                }
            }
        }
    }

    /// True while a packet is on the wire.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Marks the in-flight packet finished (called from the `EgressDone`
    /// event handler before asking for the next grant).
    pub fn complete_transmission(&mut self) {
        debug_assert!(self.busy, "complete_transmission while idle");
        self.busy = false;
    }

    /// If the port is idle and a packet is eligible, grants it: returns
    /// the item and its serialization time. The caller schedules
    /// `EgressDone` at `now + duration` and the fabric hand-off.
    pub fn try_grant(&mut self, now: SimTime) -> Option<(EgressItem, SimDuration)> {
        if self.busy {
            return None;
        }
        // Bulk-burst continuation: keep draining same-class write segments.
        let item = self.burst_continuation(now).or_else(|| {
            if self.tx_strict_priority {
                // The logical Tx arbiter outranks the Rx arbiter (Key
                // Finding 3) — weighted 3:1 rather than absolute, so
                // responses are squeezed hard but never fully starved.
                const TX_RATIO: u32 = 3;
                let tx_first = self.tx_streak < TX_RATIO;
                let granted = if tx_first {
                    self.tx
                        .grant(&self.weights, &self.paused_until, now)
                        .map(|p| (p, true))
                        .or_else(|| {
                            self.rx
                                .grant(&self.weights, &self.paused_until, now)
                                .map(|p| (p, false))
                        })
                } else {
                    self.rx
                        .grant(&self.weights, &self.paused_until, now)
                        .map(|p| (p, false))
                        .or_else(|| {
                            self.tx
                                .grant(&self.weights, &self.paused_until, now)
                                .map(|p| (p, true))
                        })
                };
                granted.map(|(p, was_tx)| {
                    if was_tx {
                        self.tx_streak += 1;
                    } else {
                        self.tx_streak = 0;
                    }
                    p
                })
            } else {
                // Ablation: alternate between the groups.
                self.rr_toggle = !self.rr_toggle;
                if self.rr_toggle {
                    self.tx
                        .grant(&self.weights, &self.paused_until, now)
                        .or_else(|| self.rx.grant(&self.weights, &self.paused_until, now))
                } else {
                    self.rx
                        .grant(&self.weights, &self.paused_until, now)
                        .or_else(|| self.tx.grant(&self.weights, &self.paused_until, now))
                }
            }
        })?;
        // Arm or clear the burst window.
        if item.is_write_seg && item.total_len >= self.bulk_threshold {
            let left = match self.burst_state.take() {
                Some((tc, left)) if tc == item.tc.index() => left,
                _ => self.bulk_burst,
            };
            if left > 0 {
                self.burst_state = Some((item.tc.index(), left));
            }
        } else {
            self.burst_state = None;
        }
        self.busy = true;
        self.granted_packets += 1;
        self.granted_bytes += item.wire_bytes;
        Some((
            item,
            SimDuration::serialization(item.wire_bytes, self.rate_bps),
        ))
    }

    fn burst_continuation(&mut self, now: SimTime) -> Option<EgressItem> {
        let (tc, left) = self.burst_state?;
        if left == 0 || self.paused_until[tc] > now {
            self.burst_state = None;
            return None;
        }
        let is_bulk_write = self.tx.queues[tc]
            .front()
            .is_some_and(|p| p.is_write_seg && p.total_len >= self.bulk_threshold);
        if !is_bulk_write {
            self.burst_state = None;
            return None;
        }
        self.burst_state = Some((tc, left - 1));
        self.tx.queues[tc].pop_front()
    }

    /// Packets waiting in the Tx (request) group.
    pub fn tx_depth(&self) -> usize {
        self.tx.depth()
    }

    /// Packets waiting in the Rx (response) group.
    pub fn rx_depth(&self) -> usize {
        self.rx.depth()
    }

    /// Total packets granted so far.
    pub fn granted_packets(&self) -> u64 {
        self.granted_packets
    }

    /// Total wire bytes granted so far.
    pub fn granted_bytes(&self) -> u64 {
        self.granted_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::PacketArena;
    use crate::packet::{Packet, PacketKind};
    use crate::types::{HostId, MrKey, Opcode, QpNum};
    use bytes::Bytes;

    fn pkt(tc: u8, kind: PacketKind, payload: usize) -> Packet {
        Packet {
            src: HostId(0),
            dst: HostId(1),
            src_qp: QpNum(0),
            dst_qp: QpNum(0),
            tc: TrafficClass::new(tc),
            flow: FlowId(0),
            kind,
            msg_id: 0,
            seg_idx: 0,
            seg_cnt: 1,
            payload: Bytes::from(vec![0u8; payload]),
            opcode: Opcode::Write,
            total_len: payload as u64,
            remote_addr: 0,
            rkey: MrKey(0),
            atomic_args: (0, 0),
            local_addr: 0,
            wqe_seq: 0,
            wr_id: 0,
            posted_at: SimTime::ZERO,
        }
    }

    fn enqueue(s: &mut EgressScheduler, arena: &mut PacketArena, class: EgressClass, p: Packet) {
        let h = arena.insert(p);
        s.enqueue(class, EgressItem::of(arena.get(h), h));
    }

    /// Grants everything eligible, resolving each item back to its
    /// packet through the arena.
    fn drain(s: &mut EgressScheduler, arena: &mut PacketArena, now: SimTime) -> Vec<Packet> {
        let mut out = Vec::new();
        while let Some((item, _)) = s.try_grant(now) {
            out.push(arena.take(item.pkt));
            s.complete_transmission();
        }
        out
    }

    #[test]
    fn tx_beats_rx_strictly() {
        let mut s = EgressScheduler::new(25_000_000_000);
        let mut a = PacketArena::new();
        enqueue(
            &mut s,
            &mut a,
            EgressClass::RxResponse,
            pkt(0, PacketKind::ReadResp, 64),
        );
        enqueue(
            &mut s,
            &mut a,
            EgressClass::TxRequest,
            pkt(0, PacketKind::WriteSeg, 64),
        );
        enqueue(
            &mut s,
            &mut a,
            EgressClass::TxRequest,
            pkt(0, PacketKind::WriteSeg, 64),
        );
        let order = drain(&mut s, &mut a, SimTime::ZERO);
        assert_eq!(order.len(), 3);
        assert_eq!(order[0].kind, PacketKind::WriteSeg);
        assert_eq!(order[1].kind, PacketKind::WriteSeg);
        assert_eq!(order[2].kind, PacketKind::ReadResp);
        assert_eq!(a.live(), 0, "drain consumed every arena slot");
    }

    #[test]
    fn busy_port_grants_one_at_a_time() {
        let mut s = EgressScheduler::new(25_000_000_000);
        let mut a = PacketArena::new();
        enqueue(
            &mut s,
            &mut a,
            EgressClass::TxRequest,
            pkt(0, PacketKind::WriteSeg, 64),
        );
        enqueue(
            &mut s,
            &mut a,
            EgressClass::TxRequest,
            pkt(0, PacketKind::WriteSeg, 64),
        );
        assert!(s.try_grant(SimTime::ZERO).is_some());
        assert!(s.try_grant(SimTime::ZERO).is_none(), "port is busy");
        s.complete_transmission();
        assert!(s.try_grant(SimTime::ZERO).is_some());
    }

    #[test]
    fn ets_weights_share_bandwidth() {
        let mut s = EgressScheduler::new(25_000_000_000);
        let mut a = PacketArena::new();
        let mut w = [1u32; 8];
        w[0] = 3;
        w[1] = 1;
        s.set_ets_weights(w);
        for _ in 0..400 {
            enqueue(
                &mut s,
                &mut a,
                EgressClass::TxRequest,
                pkt(0, PacketKind::WriteSeg, 1024),
            );
            enqueue(
                &mut s,
                &mut a,
                EgressClass::TxRequest,
                pkt(1, PacketKind::WriteSeg, 1024),
            );
        }
        // Grant a window and measure the byte share.
        let mut bytes = [0u64; 8];
        for _ in 0..200 {
            let (item, _) = s.try_grant(SimTime::ZERO).expect("backlog");
            bytes[item.tc.index()] += item.wire_bytes;
            a.free(item.pkt);
            s.complete_transmission();
        }
        let share0 = bytes[0] as f64 / (bytes[0] + bytes[1]) as f64;
        assert!(
            (share0 - 0.75).abs() < 0.08,
            "3:1 weights should give ~75% share, got {share0}"
        );
    }

    #[test]
    fn equal_weights_split_evenly() {
        let mut s = EgressScheduler::new(25_000_000_000);
        let mut a = PacketArena::new();
        for _ in 0..200 {
            enqueue(
                &mut s,
                &mut a,
                EgressClass::TxRequest,
                pkt(2, PacketKind::WriteSeg, 512),
            );
            enqueue(
                &mut s,
                &mut a,
                EgressClass::TxRequest,
                pkt(5, PacketKind::WriteSeg, 512),
            );
        }
        let mut counts = [0u32; 8];
        for _ in 0..100 {
            let (item, _) = s.try_grant(SimTime::ZERO).expect("backlog");
            counts[item.tc.index()] += 1;
            a.free(item.pkt);
            s.complete_transmission();
        }
        assert!((counts[2] as i32 - counts[5] as i32).abs() <= 2);
    }

    #[test]
    fn paused_class_is_skipped() {
        let mut s = EgressScheduler::new(25_000_000_000);
        let mut a = PacketArena::new();
        enqueue(
            &mut s,
            &mut a,
            EgressClass::TxRequest,
            pkt(0, PacketKind::WriteSeg, 64),
        );
        enqueue(
            &mut s,
            &mut a,
            EgressClass::TxRequest,
            pkt(1, PacketKind::WriteSeg, 64),
        );
        s.pause(TrafficClass::new(0), SimTime::from_micros(100));
        let order = drain(&mut s, &mut a, SimTime::ZERO);
        assert_eq!(order.len(), 1);
        assert_eq!(order[0].tc.index(), 1);
        // After the pause expires the packet flows again.
        let order = drain(&mut s, &mut a, SimTime::from_micros(200));
        assert_eq!(order.len(), 1);
        assert_eq!(order[0].tc.index(), 0);
    }

    #[test]
    fn bulk_writes_burst_through_dwrr() {
        let mut s = EgressScheduler::new(25_000_000_000);
        let mut a = PacketArena::new();
        s.set_bulk_burst(4, 512);
        // Interleave big writes on TC0 with reads requests on TC1.
        for _ in 0..6 {
            let mut w = pkt(0, PacketKind::WriteSeg, 2048);
            w.total_len = 2048;
            enqueue(&mut s, &mut a, EgressClass::TxRequest, w);
            enqueue(
                &mut s,
                &mut a,
                EgressClass::TxRequest,
                pkt(1, PacketKind::ReadReq, 0),
            );
        }
        let order = drain(&mut s, &mut a, SimTime::ZERO);
        // Once a bulk write is granted, it pulls a burst of further writes
        // through before the other class gets another grant.
        let first_write = order
            .iter()
            .position(|p| p.kind == PacketKind::WriteSeg)
            .expect("writes granted");
        let burst_len = order[first_write..]
            .iter()
            .take_while(|p| p.kind == PacketKind::WriteSeg)
            .count();
        assert!(
            burst_len >= 4,
            "bulk burst should batch several writes, got run of {burst_len}"
        );
        assert_eq!(order.len(), 12, "nothing is starved forever");
    }

    #[test]
    fn small_writes_do_not_burst() {
        let mut s = EgressScheduler::new(25_000_000_000);
        let mut a = PacketArena::new();
        s.set_bulk_burst(4, 512);
        for _ in 0..6 {
            enqueue(
                &mut s,
                &mut a,
                EgressClass::TxRequest,
                pkt(0, PacketKind::WriteSeg, 64),
            );
            enqueue(
                &mut s,
                &mut a,
                EgressClass::TxRequest,
                pkt(1, PacketKind::ReadReq, 0),
            );
        }
        let order = drain(&mut s, &mut a, SimTime::ZERO);
        let first_read = order
            .iter()
            .position(|p| p.kind == PacketKind::ReadReq)
            .expect("reads granted");
        assert!(first_read <= 2, "inline writes must interleave fairly");
    }

    #[test]
    fn serialization_time_matches_rate() {
        let mut s = EgressScheduler::new(8_000_000_000_000); // 1 B/ps
        let mut a = PacketArena::new();
        enqueue(
            &mut s,
            &mut a,
            EgressClass::TxRequest,
            pkt(0, PacketKind::SendSeg, 938),
        );
        let (item, dur) = s.try_grant(SimTime::ZERO).expect("grant");
        assert_eq!(dur.as_picos(), item.wire_bytes);
    }
}
