//! # rnic-model — a microarchitectural model of an RDMA NIC
//!
//! Executable form of the RNIC datapath in Fig. 3 of *Ragnar: Exploring
//! Volatile-Channel Vulnerabilities on RDMA NIC* (DAC 2025): PCIe and
//! Ethernet links, WQE fetch and Tx issue arbitration, processing units,
//! a banked translation & protection unit with row buffers (the source of
//! the Grain-IV offset effect), MPT caches (the Pythia baseline's target),
//! an egress scheduler with strict Tx-over-Rx priority and ETS weights,
//! and the NoC-activation heuristic — each mechanism mapped to one of the
//! paper's Key Findings in `DESIGN.md`.
//!
//! The crate is driven by the `rdma-verbs` layer: [`Rnic::post_send`] and
//! [`Rnic::handle`] return [`NicAction`]s that the global event loop turns
//! into future events, fabric deliveries and application completions.
//!
//! # Examples
//!
//! Stand-alone use of the translation unit (the contended structure the
//! Grain-III/IV attacks observe):
//!
//! ```
//! use rnic_model::{AccessFlags, DeviceProfile, MrEntry, MrKey, Opcode, PdId, TranslationUnit};
//! use sim_core::{SimRng, SimTime};
//!
//! let profile = DeviceProfile::connectx4();
//! let mut tpu = TranslationUnit::new(&profile);
//! tpu.register_mr(MrEntry {
//!     key: MrKey(1),
//!     pd: PdId(0),
//!     base_va: 0x20_0000,
//!     len: 2 * 1024 * 1024,
//!     access: AccessFlags::remote_all(),
//! });
//! let mut rng = SimRng::seed_from(7);
//! let access = tpu
//!     .access(SimTime::ZERO, &mut rng, PdId(0), Opcode::Read, MrKey(1), 0x20_0000, 64)
//!     .expect("in-bounds read");
//! assert_eq!(access.mr_offset, 0);
//! ```

#![warn(missing_docs)]

mod arbiter;
mod arena;
mod cache;
mod counters;
mod device;
mod memory;
mod nic;
mod noc;
mod packet;
mod tpu;
mod types;

pub use arbiter::{EgressClass, EgressItem, EgressScheduler};
pub use arena::{ArenaStats, HotHeader, PacketArena, PacketHandle};
pub use cache::SetAssocCache;
pub use counters::{CounterSnapshot, NicCounters};
pub use device::{DeviceKind, DeviceProfile};
pub use memory::HostMemory;
pub use nic::{NicAction, NicEvent, PostError, QpConfig, QpTransport, ResetError, Rnic};
pub use noc::NocActivation;
pub use packet::{segment_count, Cqe, CqeStatus, Packet, PacketKind, RecvWqe, Wqe};
pub use tpu::{MrEntry, TpuAccess, TpuBreakdown, TranslationUnit};
pub use types::{
    wire, AccessFlags, FlowId, HostId, MrKey, NakReason, Opcode, PdId, QpNum, TrafficClass,
};
