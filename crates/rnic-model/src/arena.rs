//! Generational slab arena for in-flight packets — the copy-free packet
//! hot path.
//!
//! A packet is allocated into the arena exactly once, when the egress
//! scheduler grants it, and every later pipeline stage — wire hops,
//! chaos injection, fabric delivery, the receiver's Rx pipeline — passes
//! an 8-byte [`PacketHandle`] instead of moving or cloning the ~180-byte
//! [`Packet`] (plus payload refcount churn) through the event queue.
//!
//! # Layout
//!
//! Storage is a struct-of-arrays split keyed by access frequency:
//!
//! * the **hot column** ([`HotHeader`]) holds the handful of header
//!   fields every wire hop reads — source, destination, traffic class,
//!   cached wire size, message id — so pure fabric traversal never
//!   touches the full packet row;
//! * the **cold column** holds the full [`Packet`] (including the
//!   refcounted payload), read only by the endpoints' NIC pipelines.
//!
//! # Handle lifetimes
//!
//! Handles are generational: freeing a slot bumps its generation, so a
//! stale handle (a logic bug — e.g. a packet freed twice, or used after
//! delivery) panics deterministically instead of silently aliasing a
//! recycled slot. Ownership is linear by convention: every allocated
//! packet has exactly one live handle flowing through the event graph,
//! and exactly one terminal consumer ([`PacketArena::take`] or
//! [`PacketArena::free`]) — delivery, a chaos/ICRC drop, or a duplicate
//! discard. Chaos duplication is the only copy point:
//! [`PacketArena::clone_entry`] copies the header row and refcounts the
//! payload (copy-on-duplicate; payload bytes are immutable and never
//! deep-copied).
//!
//! [`ArenaStats`] counts allocations, frees, duplicates and the live
//! high-water mark; the regression suite asserts `allocs` scales with
//! *packets built*, not hops traversed, and that `live == 0` at
//! quiescence (no leaks on any drop path).

use crate::packet::Packet;
use crate::types::{FlowId, HostId, TrafficClass};
use ragnar_telemetry::profile::{self, Phase};

/// An 8-byte generational reference to a packet in a [`PacketArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketHandle {
    idx: u32,
    gen: u32,
}

impl PacketHandle {
    /// A handle that matches no slot — the placeholder left behind when
    /// a packet is detached from its arena to cross a worker boundary.
    pub const DANGLING: PacketHandle = PacketHandle {
        idx: u32::MAX,
        gen: u32::MAX,
    };
}

/// The per-hop header fields, kept in their own column so wire
/// traversal reads 32 bytes instead of the full packet row.
#[derive(Debug, Clone, Copy)]
pub struct HotHeader {
    /// Sending host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Traffic class stamped on the wire.
    pub tc: TrafficClass,
    /// Cached [`Packet::wire_bytes`] (headers + payload).
    pub wire_bytes: u32,
    /// Application flow label.
    pub flow: FlowId,
    /// Requester-side message identifier.
    pub msg_id: u64,
}

/// Allocation counters for the arena (see the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Packets allocated ([`PacketArena::insert`]).
    pub allocs: u64,
    /// Packets released ([`PacketArena::take`] / [`PacketArena::free`]).
    pub frees: u64,
    /// Header-row copies made for chaos duplication
    /// ([`PacketArena::clone_entry`]); payload bytes are refcounted,
    /// never copied.
    pub dup_clones: u64,
    /// Maximum simultaneously-live packets observed.
    pub high_water: u64,
}

impl ArenaStats {
    /// Packets currently live (allocated and not yet freed).
    pub fn live(&self) -> u64 {
        self.allocs - self.frees
    }
}

/// Generational slab of in-flight packets (see the module docs).
#[derive(Debug, Default)]
pub struct PacketArena {
    gens: Vec<u32>,
    hot: Vec<HotHeader>,
    cold: Vec<Option<Packet>>,
    free: Vec<u32>,
    stats: ArenaStats,
}

impl PacketArena {
    /// An empty arena.
    pub fn new() -> PacketArena {
        PacketArena::default()
    }

    /// An empty arena with slots reserved for `cap` concurrent packets.
    pub fn with_capacity(cap: usize) -> PacketArena {
        PacketArena {
            gens: Vec::with_capacity(cap),
            hot: Vec::with_capacity(cap),
            cold: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            stats: ArenaStats::default(),
        }
    }

    /// Allocation counters.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Packets currently live.
    pub fn live(&self) -> u64 {
        self.stats.live()
    }

    /// Allocates a slot for `pkt`, caching its hot header fields.
    pub fn insert(&mut self, pkt: Packet) -> PacketHandle {
        let _p = profile::enter(Phase::ArenaAlloc);
        let hot = HotHeader {
            src: pkt.src,
            dst: pkt.dst,
            tc: pkt.tc,
            wire_bytes: u32::try_from(pkt.wire_bytes()).expect("wire size fits u32"),
            flow: pkt.flow,
            msg_id: pkt.msg_id,
        };
        self.stats.allocs += 1;
        self.stats.high_water = self.stats.high_water.max(self.stats.live());
        match self.free.pop() {
            Some(idx) => {
                let i = idx as usize;
                self.hot[i] = hot;
                debug_assert!(self.cold[i].is_none(), "free slot holds a packet");
                self.cold[i] = Some(pkt);
                PacketHandle {
                    idx,
                    gen: self.gens[i],
                }
            }
            None => {
                let idx = u32::try_from(self.gens.len()).expect("arena exceeds u32 slots");
                assert!(idx != u32::MAX, "arena full");
                self.gens.push(0);
                self.hot.push(hot);
                self.cold.push(Some(pkt));
                PacketHandle { idx, gen: 0 }
            }
        }
    }

    #[inline]
    fn check(&self, h: PacketHandle) -> usize {
        let i = h.idx as usize;
        assert!(
            i < self.gens.len() && self.gens[i] == h.gen && self.cold[i].is_some(),
            "stale packet handle {h:?}"
        );
        i
    }

    /// The hot header column for `h`.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale (freed or detached).
    #[inline]
    pub fn hot(&self, h: PacketHandle) -> &HotHeader {
        let i = self.check(h);
        &self.hot[i]
    }

    /// The full packet for `h` (cold column).
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale.
    #[inline]
    pub fn get(&self, h: PacketHandle) -> &Packet {
        let i = self.check(h);
        self.cold[i].as_ref().expect("checked live")
    }

    /// Removes the packet, returning it by value and retiring the slot.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale.
    pub fn take(&mut self, h: PacketHandle) -> Packet {
        let _p = profile::enter(Phase::ArenaFree);
        let i = self.check(h);
        self.gens[i] = self.gens[i].wrapping_add(1);
        self.free.push(h.idx);
        self.stats.frees += 1;
        self.cold[i].take().expect("checked live")
    }

    /// Drops the packet and retires the slot.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale.
    pub fn free(&mut self, h: PacketHandle) {
        drop(self.take(h));
    }

    /// Duplicates an entry (chaos duplication): copies the header row,
    /// refcounts the payload, and returns a handle to the new slot.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale.
    pub fn clone_entry(&mut self, h: PacketHandle) -> PacketHandle {
        let pkt = self.get(h).clone();
        self.stats.dup_clones += 1;
        self.insert(pkt)
    }

    /// Counts slots actually holding a packet — O(capacity), so callers
    /// (the online arena monitor) sample it on a cadence rather than per
    /// event. Always equals [`ArenaStats::live`] unless the ledger and
    /// the slab have diverged, which is exactly the bug the monitor
    /// exists to catch.
    pub fn occupied_slots(&self) -> u64 {
        self.cold.iter().filter(|c| c.is_some()).count() as u64
    }

    /// Skews the allocation ledger without touching any slot — plants
    /// precisely the inconsistency the online arena monitor must catch.
    #[doc(hidden)]
    pub fn debug_skew_ledger(&mut self) {
        self.stats.allocs += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;
    use crate::types::{MrKey, Opcode, QpNum};
    use bytes::Bytes;
    use sim_core::SimTime;

    fn pkt(msg_id: u64) -> Packet {
        Packet {
            src: HostId(1),
            dst: HostId(2),
            src_qp: QpNum(3),
            dst_qp: QpNum(4),
            tc: TrafficClass::new(1),
            flow: FlowId(5),
            kind: PacketKind::WriteSeg,
            msg_id,
            seg_idx: 0,
            seg_cnt: 1,
            payload: Bytes::from(vec![7u8; 64]),
            opcode: Opcode::Write,
            total_len: 64,
            remote_addr: 0x1000,
            rkey: MrKey(9),
            atomic_args: (0, 0),
            local_addr: 0x2000,
            wqe_seq: 0,
            wr_id: 11,
            posted_at: SimTime::ZERO,
        }
    }

    #[test]
    fn insert_get_take_roundtrip() {
        let mut arena = PacketArena::new();
        let h = arena.insert(pkt(42));
        assert_eq!(arena.hot(h).msg_id, 42);
        assert_eq!(arena.hot(h).dst, HostId(2));
        assert_eq!(
            u64::from(arena.hot(h).wire_bytes),
            arena.get(h).wire_bytes()
        );
        assert_eq!(arena.live(), 1);
        let p = arena.take(h);
        assert_eq!(p.msg_id, 42);
        assert_eq!(arena.live(), 0);
        assert_eq!(arena.stats().allocs, 1);
        assert_eq!(arena.stats().frees, 1);
    }

    #[test]
    fn slots_recycle_and_generations_guard_staleness() {
        let mut arena = PacketArena::new();
        let a = arena.insert(pkt(1));
        arena.free(a);
        let b = arena.insert(pkt(2));
        // Recycled slot, fresh generation: the old handle is dead.
        assert_eq!(arena.hot(b).msg_id, 2);
        assert_ne!(a, b);
        let stale = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            arena.get(a);
        }));
        assert!(stale.is_err(), "stale handle must panic");
    }

    #[test]
    fn dangling_handle_is_always_stale() {
        let arena = PacketArena::new();
        let stale = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            arena.hot(PacketHandle::DANGLING);
        }));
        assert!(stale.is_err());
    }

    #[test]
    fn clone_entry_refcounts_payload_and_counts() {
        let mut arena = PacketArena::new();
        let h = arena.insert(pkt(9));
        let d = arena.clone_entry(h);
        assert_eq!(arena.stats().dup_clones, 1);
        assert_eq!(arena.live(), 2);
        // Same backing payload allocation — refcounted, not copied.
        let orig = arena.get(h).payload.as_ref().as_ptr();
        let dup = arena.get(d).payload.as_ref().as_ptr();
        assert_eq!(orig, dup);
        arena.free(h);
        arena.free(d);
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn high_water_tracks_peak_liveness() {
        let mut arena = PacketArena::new();
        let hs: Vec<_> = (0..5).map(|i| arena.insert(pkt(i))).collect();
        for h in hs {
            arena.free(h);
        }
        let _ = arena.insert(pkt(99));
        assert_eq!(arena.stats().high_water, 5);
    }
}
