//! The translation & protection unit (TPU).
//!
//! This is the dark box of the paper's Fig. 3 whose behaviour §IV-C
//! reverse-engineers: every inbound one-sided operation must look up the
//! target MR's protection context, translate the virtual address, and
//! fetch the spanned 64 B tokens. The unit is shared by all flows hitting
//! the NIC, so its service time is directly observable through ULI — the
//! basis of the Grain-III (inter-MR) and Grain-IV (intra-MR offset)
//! channels.
//!
//! Modelled structure (see `DESIGN.md` §4, "KF4"):
//!
//! * an **MPT cache** for protection entries (misses fetch from host
//!   memory over PCIe);
//! * a small file of **MR protection contexts** (default: one slot) —
//!   switching the active MR costs a reload;
//! * **64 B-interleaved banks** — concurrent same-bank lookups serialize;
//! * **2048 B row buffers** interleaved across a few buffers — a row miss
//!   pays a reload penalty;
//! * a sub-word fast path for 8 B-aligned addresses;
//! * a short **token prefetch** window that discounts accesses landing
//!   near the previous one (the *relative* offset effect of Fig. 8).

use crate::device::DeviceProfile;
use crate::types::{AccessFlags, MrKey, NakReason, Opcode, PdId};
use crate::SetAssocCache;
use sim_core::FxHashMap;
use sim_core::{BankedResource, Reservation, SimDuration, SimRng, SimTime};

/// A registered memory region as seen by the NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrEntry {
    /// Remote key.
    pub key: MrKey,
    /// Owning protection domain.
    pub pd: PdId,
    /// Base virtual address (huge-page aligned by the verbs layer).
    pub base_va: u64,
    /// Length in bytes.
    pub len: u64,
    /// Remote access permissions.
    pub access: AccessFlags,
}

/// Cost breakdown of one TPU access, for tests and ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TpuBreakdown {
    /// Base lookup cost.
    pub base: SimDuration,
    /// Sub-word (non-8 B-aligned) penalty, if paid.
    pub sub_word: SimDuration,
    /// Token (non-64 B-aligned) penalty, if paid.
    pub token_misalign: SimDuration,
    /// Cost of the extra 64 B tokens spanned beyond the first.
    pub extra_tokens: SimDuration,
    /// Row-buffer miss penalty, if paid.
    pub row_miss: SimDuration,
    /// MR protection-context switch penalty, if paid.
    pub mr_switch: SimDuration,
    /// MPT cache miss penalty, if paid.
    pub mpt_miss: SimDuration,
    /// Prefetch discount actually applied (subtracted).
    pub prefetch_discount: SimDuration,
    /// Number of 64 B tokens the access spans.
    pub tokens_spanned: u32,
}

impl TpuBreakdown {
    /// Total service time implied by the breakdown (before jitter).
    pub fn total(&self) -> SimDuration {
        let gross = self.base
            + self.sub_word
            + self.token_misalign
            + self.extra_tokens
            + self.row_miss
            + self.mr_switch
            + self.mpt_miss;
        if gross.as_picos() > self.prefetch_discount.as_picos() {
            gross - self.prefetch_discount
        } else {
            SimDuration::ZERO
        }
    }
}

/// Outcome of a validated TPU access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpuAccess {
    /// When the lookup occupied its bank (includes same-bank queueing).
    pub reservation: Reservation,
    /// Cost components.
    pub breakdown: TpuBreakdown,
    /// Offset of the access relative to the MR base.
    pub mr_offset: u64,
}

/// The translation & protection unit of one RNIC.
#[derive(Debug, Clone)]
pub struct TranslationUnit {
    mrs: FxHashMap<MrKey, MrEntry>,
    banks: BankedResource,
    row_buffers: Vec<Option<u64>>,
    resident_mrs: Vec<MrKey>,
    mpt_cache: SetAssocCache,
    last_token: Option<u64>,
    prefetch_reach_tokens: u64,
    prefetch_discount: SimDuration,
    noise_extra_sigma: SimDuration,
    profile: Profile,
    accesses: u64,
}

/// The subset of [`DeviceProfile`] the TPU consumes, copied in so the unit
/// stays self-contained.
#[derive(Debug, Clone)]
struct Profile {
    base: SimDuration,
    sub_word_penalty: SimDuration,
    token_penalty: SimDuration,
    per_token: SimDuration,
    row_miss_penalty: SimDuration,
    row_bytes: u64,
    banks: usize,
    mr_context_slots: usize,
    mr_context_switch_penalty: SimDuration,
    jitter_sigma: SimDuration,
    mpt_miss_penalty: SimDuration,
}

impl TranslationUnit {
    /// Builds the TPU for a device profile.
    pub fn new(profile: &DeviceProfile) -> Self {
        TranslationUnit {
            mrs: FxHashMap::default(),
            banks: BankedResource::new(profile.tpu_banks),
            row_buffers: vec![None; profile.tpu_row_buffers],
            resident_mrs: Vec::with_capacity(profile.mr_context_slots),
            mpt_cache: SetAssocCache::new(profile.mpt_cache_entries, profile.mpt_cache_ways),
            last_token: None,
            prefetch_reach_tokens: 4,
            prefetch_discount: profile.tpu_base / 4,
            noise_extra_sigma: SimDuration::ZERO,
            profile: Profile {
                base: profile.tpu_base,
                sub_word_penalty: profile.tpu_sub_word_penalty,
                token_penalty: profile.tpu_token_penalty,
                per_token: profile.tpu_per_token,
                row_miss_penalty: profile.tpu_row_miss_penalty,
                row_bytes: profile.tpu_row_bytes,
                banks: profile.tpu_banks,
                mr_context_slots: profile.mr_context_slots,
                mr_context_switch_penalty: profile.mr_context_switch_penalty,
                jitter_sigma: profile.tpu_jitter_sigma,
                mpt_miss_penalty: profile.mpt_miss_penalty,
            },
            accesses: 0,
        }
    }

    /// Registers an MR with the NIC.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered or the region is empty.
    pub fn register_mr(&mut self, entry: MrEntry) {
        assert!(entry.len > 0, "cannot register an empty memory region");
        let prev = self.mrs.insert(entry.key, entry);
        assert!(prev.is_none(), "MR key {:?} already registered", entry.key);
    }

    /// Removes an MR; returns whether it existed.
    pub fn deregister_mr(&mut self, key: MrKey) -> bool {
        self.resident_mrs.retain(|k| *k != key);
        self.mpt_cache.invalidate(key.0 as u64);
        self.mrs.remove(&key).is_some()
    }

    /// Looks up an MR entry.
    pub fn mr(&self, key: MrKey) -> Option<&MrEntry> {
        self.mrs.get(&key)
    }

    /// Number of registered MRs.
    pub fn mr_count(&self) -> usize {
        self.mrs.len()
    }

    /// Total validated accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Hit ratio of the MPT cache.
    pub fn mpt_hit_ratio(&self) -> f64 {
        self.mpt_cache.hit_ratio()
    }

    /// Direct access to the MPT cache (used by the Pythia baseline and
    /// defenses).
    pub fn mpt_cache(&self) -> &SetAssocCache {
        &self.mpt_cache
    }

    /// Injects additional Gaussian latency noise (σ); the §VII mitigation
    /// knob. Zero disables.
    pub fn set_noise_sigma(&mut self, sigma: SimDuration) {
        self.noise_extra_sigma = sigma;
    }

    /// Validates permissions/bounds for an access without performing it.
    ///
    /// # Errors
    ///
    /// Returns the [`NakReason`] the responder would put in its NAK.
    pub fn validate(
        &self,
        qp_pd: PdId,
        opcode: Opcode,
        key: MrKey,
        addr: u64,
        len: u64,
    ) -> Result<&MrEntry, NakReason> {
        let mr = self.mrs.get(&key).ok_or(NakReason::InvalidMrKey)?;
        if mr.pd != qp_pd {
            return Err(NakReason::PdMismatch);
        }
        if !mr.access.permits(opcode) {
            return Err(NakReason::AccessDenied);
        }
        let end = addr.checked_add(len).ok_or(NakReason::OutOfBounds)?;
        if addr < mr.base_va || end > mr.base_va + mr.len {
            return Err(NakReason::OutOfBounds);
        }
        Ok(mr)
    }

    /// Performs a validated lookup at `now`, mutating the unit's volatile
    /// state (row buffers, resident MR contexts, prefetch window, MPT
    /// cache) and reserving the addressed bank.
    ///
    /// # Errors
    ///
    /// Returns the [`NakReason`] if validation fails; volatile state is
    /// untouched in that case.
    #[allow(clippy::too_many_arguments)]
    pub fn access(
        &mut self,
        now: SimTime,
        rng: &mut SimRng,
        qp_pd: PdId,
        opcode: Opcode,
        key: MrKey,
        addr: u64,
        len: u64,
    ) -> Result<TpuAccess, NakReason> {
        let mr = *self.validate(qp_pd, opcode, key, addr, len)?;
        let mut b = TpuBreakdown {
            base: self.profile.base,
            ..TpuBreakdown::default()
        };

        // MPT protection-entry cache.
        if !self.mpt_cache.access(key.0 as u64) {
            b.mpt_miss = self.profile.mpt_miss_penalty;
        }

        // MR protection-context residency (LRU over a tiny slot file).
        if let Some(pos) = self.resident_mrs.iter().position(|k| *k == key) {
            self.resident_mrs.remove(pos);
        } else {
            b.mr_switch = self.profile.mr_context_switch_penalty;
            if self.resident_mrs.len() >= self.profile.mr_context_slots {
                self.resident_mrs.pop();
            }
        }
        self.resident_mrs.insert(0, key);

        // Alignment fast paths (Key Finding 4: drops at 8 B-aligned
        // addresses, larger drops at 64 B multiples).
        if !addr.is_multiple_of(8) {
            b.sub_word = self.profile.sub_word_penalty;
        }
        if !addr.is_multiple_of(64) {
            b.token_misalign = self.profile.token_penalty;
        }

        // Tokens spanned.
        let first_token = addr / 64;
        let last_token = (addr + len.max(1) - 1) / 64;
        b.tokens_spanned = (last_token - first_token + 1) as u32;
        b.extra_tokens = self.profile.per_token * (b.tokens_spanned as u64 - 1);

        // Row-buffer model: 2048 B rows interleaved over the buffers.
        let row = addr / self.profile.row_bytes;
        let buf = (row % self.row_buffers.len() as u64) as usize;
        if self.row_buffers[buf] != Some(row) {
            b.row_miss = self.profile.row_miss_penalty;
            self.row_buffers[buf] = Some(row);
        }

        // Relative-offset prefetch window (Fig. 8): accesses landing
        // within a few tokens of the previous one are discounted.
        if let Some(prev) = self.last_token {
            let dist = first_token.abs_diff(prev);
            if dist == 0 {
                b.prefetch_discount = self.prefetch_discount;
            } else if dist <= self.prefetch_reach_tokens {
                b.prefetch_discount = self.prefetch_discount / 2;
            }
        }
        self.last_token = Some(first_token);

        // Jitter (model noise + optional mitigation noise).
        let mut service = b.total();
        let sigma =
            self.profile.jitter_sigma.as_picos() as f64 + self.noise_extra_sigma.as_picos() as f64;
        if sigma > 0.0 {
            let j = rng.jitter_ps(sigma);
            let with_jitter = (service.as_picos() as f64 + j).max(0.0);
            service = SimDuration::from_picos(with_jitter.round() as u64);
        }

        let bank = (first_token % self.profile.banks as u64) as usize;
        let reservation = self.banks.reserve(bank, now, service);
        self.accesses += 1;

        Ok(TpuAccess {
            reservation,
            breakdown: b,
            mr_offset: addr - mr.base_va,
        })
    }

    /// The bank index an address maps to (exposed for the side-channel
    /// analysis and tests).
    pub fn bank_of(&self, addr: u64) -> usize {
        ((addr / 64) % self.profile.banks as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> (TranslationUnit, SimRng) {
        let mut profile = DeviceProfile::connectx4();
        profile.tpu_jitter_sigma = SimDuration::ZERO;
        let mut tpu = TranslationUnit::new(&profile);
        tpu.register_mr(MrEntry {
            key: MrKey(1),
            pd: PdId(0),
            base_va: 0x200000, // 2 MB aligned
            len: 2 * 1024 * 1024,
            access: AccessFlags::remote_all(),
        });
        tpu.register_mr(MrEntry {
            key: MrKey(2),
            pd: PdId(0),
            base_va: 0x600000,
            len: 2 * 1024 * 1024,
            access: AccessFlags::remote_read_only(),
        });
        (tpu, SimRng::seed_from(1))
    }

    fn svc(tpu: &mut TranslationUnit, rng: &mut SimRng, key: u32, addr: u64) -> TpuAccess {
        tpu.access(
            SimTime::ZERO,
            rng,
            PdId(0),
            Opcode::Read,
            MrKey(key),
            addr,
            64,
        )
        .expect("valid access")
    }

    #[test]
    fn protection_checks() {
        let (mut tpu, mut rng) = unit();
        // Unknown key.
        assert_eq!(
            tpu.access(
                SimTime::ZERO,
                &mut rng,
                PdId(0),
                Opcode::Read,
                MrKey(9),
                0x200000,
                8
            )
            .unwrap_err(),
            NakReason::InvalidMrKey
        );
        // Wrong PD.
        assert_eq!(
            tpu.access(
                SimTime::ZERO,
                &mut rng,
                PdId(5),
                Opcode::Read,
                MrKey(1),
                0x200000,
                8
            )
            .unwrap_err(),
            NakReason::PdMismatch
        );
        // Write to read-only MR.
        assert_eq!(
            tpu.access(
                SimTime::ZERO,
                &mut rng,
                PdId(0),
                Opcode::Write,
                MrKey(2),
                0x600000,
                8
            )
            .unwrap_err(),
            NakReason::AccessDenied
        );
        // Out of bounds (one past the end).
        assert_eq!(
            tpu.access(
                SimTime::ZERO,
                &mut rng,
                PdId(0),
                Opcode::Read,
                MrKey(1),
                0x200000 + 2 * 1024 * 1024 - 4,
                8
            )
            .unwrap_err(),
            NakReason::OutOfBounds
        );
        // Below base.
        assert_eq!(
            tpu.access(
                SimTime::ZERO,
                &mut rng,
                PdId(0),
                Opcode::Read,
                MrKey(1),
                0x1FFFFF,
                8
            )
            .unwrap_err(),
            NakReason::OutOfBounds
        );
    }

    #[test]
    fn alignment_penalties_ordered() {
        let (mut tpu, mut rng) = unit();
        // Warm everything on a throwaway access far away.
        svc(&mut tpu, &mut rng, 1, 0x200000 + 1024 * 1024);
        let aligned = svc(&mut tpu, &mut rng, 1, 0x200000).breakdown;
        let sub8 = svc(&mut tpu, &mut rng, 1, 0x200000 + 4099).breakdown; // not 8-aligned
        let tok = svc(&mut tpu, &mut rng, 1, 0x200000 + 4104).breakdown; // 8- but not 64-aligned
        assert_eq!(aligned.sub_word, SimDuration::ZERO);
        assert_eq!(aligned.token_misalign, SimDuration::ZERO);
        assert!(sub8.sub_word > SimDuration::ZERO);
        assert!(sub8.token_misalign > SimDuration::ZERO);
        assert_eq!(tok.sub_word, SimDuration::ZERO);
        assert!(tok.token_misalign > SimDuration::ZERO);
    }

    #[test]
    fn row_buffer_ping_pong() {
        let (mut tpu, mut rng) = unit();
        let base = 0x200000;
        // Same row: second access hits the open row.
        svc(&mut tpu, &mut rng, 1, base);
        let same_row = svc(&mut tpu, &mut rng, 1, base + 512).breakdown;
        assert_eq!(same_row.row_miss, SimDuration::ZERO);
        // Rows 0 and 2 share a buffer (2 buffers): alternating misses.
        svc(&mut tpu, &mut rng, 1, base + 4096);
        let back = svc(&mut tpu, &mut rng, 1, base).breakdown;
        assert!(back.row_miss > SimDuration::ZERO, "row ping-pong expected");
        // Rows 0 and 1 use different buffers: no conflict.
        svc(&mut tpu, &mut rng, 1, base + 2048);
        let still_open = svc(&mut tpu, &mut rng, 1, base + 64).breakdown;
        assert_eq!(still_open.row_miss, SimDuration::ZERO);
    }

    #[test]
    fn mr_context_switch_cost() {
        let (mut tpu, mut rng) = unit();
        svc(&mut tpu, &mut rng, 1, 0x200000);
        let same = svc(&mut tpu, &mut rng, 1, 0x200040).breakdown;
        assert_eq!(same.mr_switch, SimDuration::ZERO);
        let other = svc(&mut tpu, &mut rng, 2, 0x600000).breakdown;
        assert!(other.mr_switch > SimDuration::ZERO);
        let back = svc(&mut tpu, &mut rng, 1, 0x200080).breakdown;
        assert!(
            back.mr_switch > SimDuration::ZERO,
            "single context slot ping-pongs"
        );
    }

    #[test]
    fn tokens_spanned_counts() {
        let (mut tpu, mut rng) = unit();
        let one = tpu
            .access(
                SimTime::ZERO,
                &mut rng,
                PdId(0),
                Opcode::Read,
                MrKey(1),
                0x200000,
                64,
            )
            .unwrap();
        assert_eq!(one.breakdown.tokens_spanned, 1);
        let crossing = tpu
            .access(
                SimTime::ZERO,
                &mut rng,
                PdId(0),
                Opcode::Read,
                MrKey(1),
                0x200020,
                64,
            )
            .unwrap();
        assert_eq!(crossing.breakdown.tokens_spanned, 2);
        let big = tpu
            .access(
                SimTime::ZERO,
                &mut rng,
                PdId(0),
                Opcode::Read,
                MrKey(1),
                0x200000,
                1024,
            )
            .unwrap();
        assert_eq!(big.breakdown.tokens_spanned, 16);
        assert!(big.breakdown.extra_tokens > SimDuration::ZERO);
    }

    #[test]
    fn same_bank_serializes_different_banks_parallel() {
        let (mut tpu, mut rng) = unit();
        let t = SimTime::from_micros(10);
        let a = tpu
            .access(t, &mut rng, PdId(0), Opcode::Read, MrKey(1), 0x200000, 8)
            .unwrap();
        // Same token → same bank → queues behind `a`.
        let b = tpu
            .access(t, &mut rng, PdId(0), Opcode::Read, MrKey(1), 0x200008, 8)
            .unwrap();
        assert!(b.reservation.start >= a.reservation.end);
        // Different bank → starts immediately.
        let c = tpu
            .access(
                t,
                &mut rng,
                PdId(0),
                Opcode::Read,
                MrKey(1),
                0x200000 + 64,
                8,
            )
            .unwrap();
        assert_eq!(c.reservation.start, t);
    }

    #[test]
    fn prefetch_discount_near_previous() {
        let (mut tpu, mut rng) = unit();
        svc(&mut tpu, &mut rng, 1, 0x200000);
        let near = svc(&mut tpu, &mut rng, 1, 0x200000 + 64).breakdown;
        assert!(near.prefetch_discount > SimDuration::ZERO);
        let far = svc(&mut tpu, &mut rng, 1, 0x200000 + 64 * 100).breakdown;
        assert_eq!(far.prefetch_discount, SimDuration::ZERO);
    }

    #[test]
    fn mr_offset_reported() {
        let (mut tpu, mut rng) = unit();
        let a = svc(&mut tpu, &mut rng, 1, 0x200000 + 768);
        assert_eq!(a.mr_offset, 768);
    }

    #[test]
    fn deregister_clears_state() {
        let (mut tpu, mut rng) = unit();
        svc(&mut tpu, &mut rng, 1, 0x200000);
        assert!(tpu.deregister_mr(MrKey(1)));
        assert!(!tpu.deregister_mr(MrKey(1)));
        assert!(tpu
            .access(
                SimTime::ZERO,
                &mut rng,
                PdId(0),
                Opcode::Read,
                MrKey(1),
                0x200000,
                8
            )
            .is_err());
    }

    #[test]
    fn bank_of_is_token_interleaved() {
        let (tpu, _) = unit();
        assert_eq!(tpu.bank_of(0), 0);
        assert_eq!(tpu.bank_of(64), 1);
        assert_eq!(tpu.bank_of(64 * 16), 0); // 16 banks on CX-4
    }
}
