//! `ethtool`-style NIC counters.
//!
//! These are the observables of the paper's granularity taxonomy (§II-D):
//!
//! * **Grain-I** — per-port bytes/packets (native bps/pps counters);
//! * **Grain-II** — per-traffic-class and per-opcode counts (what
//!   HARMONIC monitors);
//! * **Grain-III** — RDMA-resource utilization (TPU accesses, PCIe bytes,
//!   per-flow activity).
//!
//! Grain-IV (addresses) is deliberately *not* counted by any production
//! NIC — which is exactly why the paper's Grain-IV attacks are stealthy.

use crate::types::{FlowId, Opcode, TrafficClass};
use serde::{Deserialize, Serialize};
use sim_core::FxHashMap;

/// Monotonic counters for one NIC.
#[derive(Debug, Clone, Default)]
pub struct NicCounters {
    /// Transmitted wire bytes (Grain-I).
    pub tx_bytes: u64,
    /// Transmitted packets (Grain-I).
    pub tx_packets: u64,
    /// Received wire bytes (Grain-I).
    pub rx_bytes: u64,
    /// Received packets (Grain-I).
    pub rx_packets: u64,
    /// Per-traffic-class transmitted bytes (Grain-II).
    pub tx_bytes_per_tc: [u64; TrafficClass::COUNT],
    /// Per-traffic-class received bytes (Grain-II).
    pub rx_bytes_per_tc: [u64; TrafficClass::COUNT],
    /// Requests issued per opcode (Grain-II; HARMONIC's opcode counters).
    pub requests_per_opcode: [u64; Opcode::COUNT],
    /// Inbound requests served per opcode (Grain-II).
    pub responder_ops_per_opcode: [u64; Opcode::COUNT],
    /// Translation-unit lookups (Grain-III resource counter).
    pub tpu_lookups: u64,
    /// DMA bytes moved over PCIe, both directions (Grain-III).
    pub pcie_bytes: u64,
    /// WQEs fetched (doorbells served).
    pub wqes_fetched: u64,
    /// Completions delivered.
    pub cqes_delivered: u64,
    /// NAKs generated (protection violations observed).
    pub naks_sent: u64,
    /// Messages retransmitted after a timeout (loss recovery).
    pub retransmits: u64,
    /// Outbound packets lost on the wire after leaving this NIC
    /// (per-direction attribution of fabric drops).
    pub wire_tx_dropped: u64,
    /// Inbound packets lost on the wire before reaching this NIC.
    pub wire_rx_dropped: u64,
    /// Inbound packets discarded by the ICRC check (payload corruption).
    pub icrc_rx_dropped: u64,
    /// Inbound data segments discarded for arriving out of order
    /// (go-back-N: the requester must retransmit the whole message).
    pub rx_out_of_order_dropped: u64,
    /// Inbound packets discarded as duplicates (replayed requests or
    /// responses to already-completed messages).
    pub rx_duplicate_dropped: u64,
    /// Receiver-not-ready NAKs absorbed by the retry budget.
    pub rnr_naks: u64,
    /// WQEs flushed with [`crate::CqeStatus::Flushed`] when a QP entered
    /// the Error state.
    pub wqes_flushed: u64,
    /// QPs that transitioned into the Error state.
    pub qp_fatal_errors: u64,
    /// Per-flow transmitted payload bytes (Grain-III bookkeeping for
    /// experiments and the HARMONIC detector).
    pub tx_payload_per_flow: FxHashMap<FlowId, u64>,
}

impl NicCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot for windowed rate computation and the per-cell metrics
    /// report.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            tx_bytes: self.tx_bytes,
            tx_packets: self.tx_packets,
            rx_bytes: self.rx_bytes,
            rx_packets: self.rx_packets,
            tx_bytes_per_tc: self.tx_bytes_per_tc,
            rx_bytes_per_tc: self.rx_bytes_per_tc,
            requests_per_opcode: self.requests_per_opcode,
            tpu_lookups: self.tpu_lookups,
            pcie_bytes: self.pcie_bytes,
            naks_sent: self.naks_sent,
            retransmits: self.retransmits,
            rnr_naks: self.rnr_naks,
            wire_tx_dropped: self.wire_tx_dropped,
            wire_rx_dropped: self.wire_rx_dropped,
            icrc_rx_dropped: self.icrc_rx_dropped,
            rx_out_of_order_dropped: self.rx_out_of_order_dropped,
            rx_duplicate_dropped: self.rx_duplicate_dropped,
            wqes_flushed: self.wqes_flushed,
            qp_fatal_errors: self.qp_fatal_errors,
            cqes_delivered: self.cqes_delivered,
        }
    }

    /// Per-flow payload bytes transmitted (zero if unseen).
    pub fn flow_tx_payload(&self, flow: FlowId) -> u64 {
        self.tx_payload_per_flow.get(&flow).copied().unwrap_or(0)
    }

    pub(crate) fn note_flow_payload(&mut self, flow: FlowId, bytes: u64) {
        *self.tx_payload_per_flow.entry(flow).or_insert(0) += bytes;
    }
}

/// A point-in-time copy of the rate-relevant counters, including the
/// per-direction dropped-packet attribution and retry/NAK budget
/// observables of the error-state machine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Transmitted wire bytes.
    pub tx_bytes: u64,
    /// Transmitted packets.
    pub tx_packets: u64,
    /// Received wire bytes.
    pub rx_bytes: u64,
    /// Received packets.
    pub rx_packets: u64,
    /// Per-TC transmitted bytes.
    pub tx_bytes_per_tc: [u64; TrafficClass::COUNT],
    /// Per-TC received bytes.
    pub rx_bytes_per_tc: [u64; TrafficClass::COUNT],
    /// Requests per opcode.
    pub requests_per_opcode: [u64; Opcode::COUNT],
    /// TPU lookups.
    pub tpu_lookups: u64,
    /// PCIe DMA bytes.
    pub pcie_bytes: u64,
    /// NAKs generated.
    pub naks_sent: u64,
    /// Timeout retransmissions.
    pub retransmits: u64,
    /// Receiver-not-ready NAKs absorbed.
    pub rnr_naks: u64,
    /// Outbound packets lost on the wire after leaving this NIC.
    pub wire_tx_dropped: u64,
    /// Inbound packets lost on the wire before reaching this NIC.
    pub wire_rx_dropped: u64,
    /// Inbound packets discarded by the ICRC check.
    pub icrc_rx_dropped: u64,
    /// Inbound segments discarded for arriving out of order.
    pub rx_out_of_order_dropped: u64,
    /// Inbound packets discarded as duplicates.
    pub rx_duplicate_dropped: u64,
    /// WQEs flushed when a QP entered the Error state.
    pub wqes_flushed: u64,
    /// QPs that transitioned into the Error state.
    pub qp_fatal_errors: u64,
    /// Completions delivered.
    pub cqes_delivered: u64,
}

impl CounterSnapshot {
    /// Component-wise difference `self - earlier` (saturating), giving the
    /// activity within a sampling window.
    pub fn delta(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let mut out = *self;
        out.tx_bytes = self.tx_bytes.saturating_sub(earlier.tx_bytes);
        out.tx_packets = self.tx_packets.saturating_sub(earlier.tx_packets);
        out.rx_bytes = self.rx_bytes.saturating_sub(earlier.rx_bytes);
        out.rx_packets = self.rx_packets.saturating_sub(earlier.rx_packets);
        for i in 0..TrafficClass::COUNT {
            out.tx_bytes_per_tc[i] =
                self.tx_bytes_per_tc[i].saturating_sub(earlier.tx_bytes_per_tc[i]);
            out.rx_bytes_per_tc[i] =
                self.rx_bytes_per_tc[i].saturating_sub(earlier.rx_bytes_per_tc[i]);
        }
        for i in 0..Opcode::COUNT {
            out.requests_per_opcode[i] =
                self.requests_per_opcode[i].saturating_sub(earlier.requests_per_opcode[i]);
        }
        out.tpu_lookups = self.tpu_lookups.saturating_sub(earlier.tpu_lookups);
        out.pcie_bytes = self.pcie_bytes.saturating_sub(earlier.pcie_bytes);
        out.naks_sent = self.naks_sent.saturating_sub(earlier.naks_sent);
        out.retransmits = self.retransmits.saturating_sub(earlier.retransmits);
        out.rnr_naks = self.rnr_naks.saturating_sub(earlier.rnr_naks);
        out.wire_tx_dropped = self.wire_tx_dropped.saturating_sub(earlier.wire_tx_dropped);
        out.wire_rx_dropped = self.wire_rx_dropped.saturating_sub(earlier.wire_rx_dropped);
        out.icrc_rx_dropped = self.icrc_rx_dropped.saturating_sub(earlier.icrc_rx_dropped);
        out.rx_out_of_order_dropped = self
            .rx_out_of_order_dropped
            .saturating_sub(earlier.rx_out_of_order_dropped);
        out.rx_duplicate_dropped = self
            .rx_duplicate_dropped
            .saturating_sub(earlier.rx_duplicate_dropped);
        out.wqes_flushed = self.wqes_flushed.saturating_sub(earlier.wqes_flushed);
        out.qp_fatal_errors = self.qp_fatal_errors.saturating_sub(earlier.qp_fatal_errors);
        out.cqes_delivered = self.cqes_delivered.saturating_sub(earlier.cqes_delivered);
        out
    }

    /// The scalar counters as stable `(name, value)` pairs — the shape
    /// the telemetry metrics registry folds into the per-cell report.
    /// Per-TC and per-opcode arrays are deliberately aggregate-only
    /// here; the full breakdown stays on [`NicCounters`].
    pub fn metric_entries(&self) -> [(&'static str, u64); 15] {
        [
            ("tx_bytes", self.tx_bytes),
            ("tx_packets", self.tx_packets),
            ("rx_bytes", self.rx_bytes),
            ("rx_packets", self.rx_packets),
            ("tpu_lookups", self.tpu_lookups),
            ("pcie_bytes", self.pcie_bytes),
            ("naks_sent", self.naks_sent),
            ("retransmits", self.retransmits),
            ("rnr_naks", self.rnr_naks),
            ("wire_tx_dropped", self.wire_tx_dropped),
            ("wire_rx_dropped", self.wire_rx_dropped),
            ("icrc_rx_dropped", self.icrc_rx_dropped),
            ("rx_out_of_order_dropped", self.rx_out_of_order_dropped),
            ("rx_duplicate_dropped", self.rx_duplicate_dropped),
            ("qp_fatal_errors", self.qp_fatal_errors),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta() {
        let mut c = NicCounters::new();
        c.tx_bytes = 100;
        c.tx_packets = 2;
        let early = c.snapshot();
        c.tx_bytes = 350;
        c.tx_packets = 7;
        c.tx_bytes_per_tc[3] = 50;
        let late = c.snapshot();
        let d = late.delta(&early);
        assert_eq!(d.tx_bytes, 250);
        assert_eq!(d.tx_packets, 5);
        assert_eq!(d.tx_bytes_per_tc[3], 50);
    }

    #[test]
    fn snapshot_carries_error_and_drop_attribution() {
        let mut c = NicCounters::new();
        c.naks_sent = 3;
        c.retransmits = 2;
        c.wire_tx_dropped = 5;
        c.wire_rx_dropped = 4;
        c.icrc_rx_dropped = 1;
        c.qp_fatal_errors = 1;
        let early = c.snapshot();
        c.naks_sent = 7;
        c.wire_tx_dropped = 9;
        let d = c.snapshot().delta(&early);
        assert_eq!(d.naks_sent, 4);
        assert_eq!(d.wire_tx_dropped, 4);
        assert_eq!(d.retransmits, 0);
        let entries = early.metric_entries();
        let get = |name: &str| {
            entries
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| *v)
                .expect("entry")
        };
        assert_eq!(get("naks_sent"), 3);
        assert_eq!(get("wire_tx_dropped"), 5);
        assert_eq!(get("wire_rx_dropped"), 4);
        assert_eq!(get("icrc_rx_dropped"), 1);
        assert_eq!(get("qp_fatal_errors"), 1);
    }

    #[test]
    fn flow_payload_accumulates() {
        let mut c = NicCounters::new();
        c.note_flow_payload(FlowId(1), 64);
        c.note_flow_payload(FlowId(1), 64);
        c.note_flow_payload(FlowId(2), 10);
        assert_eq!(c.flow_tx_payload(FlowId(1)), 128);
        assert_eq!(c.flow_tx_payload(FlowId(2)), 10);
        assert_eq!(c.flow_tx_payload(FlowId(3)), 0);
    }
}
