//! Identifier newtypes and wire-level vocabulary shared by the NIC model
//! and the verbs layer.

use core::fmt;

/// Identifies a host (and, one-to-one in this model, its RNIC and switch
/// port) within a simulated fabric.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct HostId(pub u32);

/// A queue-pair number, unique per host.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct QpNum(pub u32);

/// A memory-region remote key, unique per host.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct MrKey(pub u32);

/// A protection-domain identifier, unique per host.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct PdId(pub u32);

/// An application-level flow label used for counters and the NoC
/// activation heuristic. Distinct logical traffic streams (e.g. the two
/// competing flows of Fig. 4) carry distinct labels.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct FlowId(pub u32);

/// An Ethernet traffic class (0–7), as configured by the `mlnx_qos`
/// equivalent in the verbs layer.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct TrafficClass(pub u8);

impl TrafficClass {
    /// Number of traffic classes supported by the model.
    pub const COUNT: usize = 8;

    /// Creates a traffic class, validating the range.
    ///
    /// # Panics
    ///
    /// Panics if `tc > 7`.
    pub fn new(tc: u8) -> Self {
        assert!(tc < Self::COUNT as u8, "traffic class out of range: {tc}");
        TrafficClass(tc)
    }

    /// The class index as a usize, for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// RDMA operation codes supported by the model.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Opcode {
    /// One-sided RDMA Read.
    Read,
    /// One-sided RDMA Write.
    Write,
    /// Two-sided Send (consumes a posted receive at the responder).
    Send,
    /// 8-byte fetch-and-add.
    AtomicFetchAdd,
    /// 8-byte compare-and-swap.
    AtomicCmpSwap,
}

impl Opcode {
    /// The opcode's lowercase name (telemetry event args, tables).
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Read => "read",
            Opcode::Write => "write",
            Opcode::Send => "send",
            Opcode::AtomicFetchAdd => "fetch_add",
            Opcode::AtomicCmpSwap => "cmp_swap",
        }
    }

    /// All opcodes, for sweep enumeration.
    pub const ALL: [Opcode; 5] = [
        Opcode::Read,
        Opcode::Write,
        Opcode::Send,
        Opcode::AtomicFetchAdd,
        Opcode::AtomicCmpSwap,
    ];

    /// True for the two atomic opcodes.
    pub fn is_atomic(self) -> bool {
        matches!(self, Opcode::AtomicFetchAdd | Opcode::AtomicCmpSwap)
    }

    /// True if the operation moves requester data to the responder
    /// (payload travels in the request direction).
    pub fn carries_request_payload(self) -> bool {
        matches!(self, Opcode::Write | Opcode::Send)
    }

    /// True if the responder returns payload (read response / atomic
    /// result).
    pub fn returns_payload(self) -> bool {
        matches!(
            self,
            Opcode::Read | Opcode::AtomicFetchAdd | Opcode::AtomicCmpSwap
        )
    }

    /// Stable index for per-opcode counter tables.
    pub fn index(self) -> usize {
        match self {
            Opcode::Read => 0,
            Opcode::Write => 1,
            Opcode::Send => 2,
            Opcode::AtomicFetchAdd => 3,
            Opcode::AtomicCmpSwap => 4,
        }
    }

    /// Number of distinct opcodes.
    pub const COUNT: usize = 5;
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Opcode::Read => "READ",
            Opcode::Write => "WRITE",
            Opcode::Send => "SEND",
            Opcode::AtomicFetchAdd => "FETCH_ADD",
            Opcode::AtomicCmpSwap => "CMP_SWAP",
        };
        f.write_str(s)
    }
}

/// MR access permissions (a flag set; kept as explicit bools rather than a
/// bitflags dependency).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct AccessFlags {
    /// Remote peers may RDMA-Read this MR.
    pub remote_read: bool,
    /// Remote peers may RDMA-Write this MR.
    pub remote_write: bool,
    /// Remote peers may perform atomics on this MR.
    pub remote_atomic: bool,
}

impl AccessFlags {
    /// Read-only remote access.
    pub fn remote_read_only() -> Self {
        AccessFlags {
            remote_read: true,
            remote_write: false,
            remote_atomic: false,
        }
    }

    /// Full remote access.
    pub fn remote_all() -> Self {
        AccessFlags {
            remote_read: true,
            remote_write: true,
            remote_atomic: true,
        }
    }

    /// True if `opcode` is permitted by these flags.
    pub fn permits(self, opcode: Opcode) -> bool {
        match opcode {
            Opcode::Read => self.remote_read,
            Opcode::Write => self.remote_write,
            Opcode::Send => true, // send targets a posted receive, not the MR table
            Opcode::AtomicFetchAdd | Opcode::AtomicCmpSwap => self.remote_atomic,
        }
    }
}

/// Why the responder refused an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum NakReason {
    /// The remote key did not match any registered MR.
    InvalidMrKey,
    /// The access span fell outside the MR bounds.
    OutOfBounds,
    /// The MR's access flags do not permit the opcode.
    AccessDenied,
    /// The MR belongs to a different protection domain than the QP.
    PdMismatch,
    /// A Send arrived but no receive WQE was posted.
    ReceiveNotPosted,
}

impl NakReason {
    /// Short stable name (telemetry event args).
    pub fn name(self) -> &'static str {
        match self {
            NakReason::InvalidMrKey => "invalid_mr_key",
            NakReason::OutOfBounds => "out_of_bounds",
            NakReason::AccessDenied => "access_denied",
            NakReason::PdMismatch => "pd_mismatch",
            NakReason::ReceiveNotPosted => "receive_not_posted",
        }
    }
}

impl fmt::Display for NakReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NakReason::InvalidMrKey => "invalid memory region key",
            NakReason::OutOfBounds => "access outside memory region bounds",
            NakReason::AccessDenied => "memory region access flags deny operation",
            NakReason::PdMismatch => "protection domain mismatch",
            NakReason::ReceiveNotPosted => "no receive posted for send",
        };
        f.write_str(s)
    }
}

/// Wire-format constants (RoCEv2-flavoured, rounded).
pub mod wire {
    /// Ethernet + IP + UDP + BTH framing bytes per packet.
    pub const HEADER_BYTES: u64 = 14 + 20 + 8 + 12 + 4 + 4;
    /// RETH (RDMA extended transport header) bytes on requests.
    pub const RETH_BYTES: u64 = 16;
    /// AtomicETH bytes.
    pub const ATOMIC_ETH_BYTES: u64 = 28;
    /// ACK/NAK packet total size on the wire.
    pub const ACK_BYTES: u64 = HEADER_BYTES + 4;
    /// Path MTU used by the model.
    pub const MTU: u64 = 4096;
    /// Atomic operand size.
    pub const ATOMIC_LEN: u64 = 8;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_class_bounds() {
        assert_eq!(TrafficClass::new(7).index(), 7);
    }

    #[test]
    #[should_panic(expected = "traffic class out of range")]
    fn traffic_class_rejects_8() {
        let _ = TrafficClass::new(8);
    }

    #[test]
    fn opcode_predicates() {
        assert!(Opcode::Read.returns_payload());
        assert!(!Opcode::Read.carries_request_payload());
        assert!(Opcode::Write.carries_request_payload());
        assert!(Opcode::AtomicFetchAdd.is_atomic());
        assert!(Opcode::AtomicCmpSwap.returns_payload());
        assert!(!Opcode::Send.is_atomic());
    }

    #[test]
    fn opcode_indices_unique() {
        let mut seen = [false; Opcode::COUNT];
        for op in Opcode::ALL {
            assert!(!seen[op.index()], "duplicate index for {op}");
            seen[op.index()] = true;
        }
    }

    #[test]
    fn access_flags_permit_matrix() {
        let ro = AccessFlags::remote_read_only();
        assert!(ro.permits(Opcode::Read));
        assert!(!ro.permits(Opcode::Write));
        assert!(!ro.permits(Opcode::AtomicFetchAdd));
        let all = AccessFlags::remote_all();
        for op in Opcode::ALL {
            assert!(all.permits(op));
        }
    }

    #[test]
    fn nak_reason_display_nonempty() {
        assert!(!NakReason::OutOfBounds.to_string().is_empty());
    }
}
