//! Device parameter profiles for the modelled network adapters.
//!
//! The public numbers come from the paper's Table III (port speed, PCIe
//! generation/width); the microarchitectural rates are calibration
//! parameters chosen so the reverse-engineered behaviours of §IV emerge at
//! the right operating points (see `DESIGN.md` §4 and the ablation
//! benches).

use sim_core::SimDuration;

/// The ConnectX generations evaluated in the paper (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DeviceKind {
    /// ConnectX-4: 25 Gbps, PCIe 3.0 x8.
    ConnectX4,
    /// ConnectX-5: 100 Gbps, PCIe 3.0 x8.
    ConnectX5,
    /// ConnectX-6: 200 Gbps, PCIe 4.0 x16.
    ConnectX6,
}

impl DeviceKind {
    /// All generations, CX-4 to CX-6.
    pub const ALL: [DeviceKind; 3] = [
        DeviceKind::ConnectX4,
        DeviceKind::ConnectX5,
        DeviceKind::ConnectX6,
    ];

    /// Short display name ("CX-4" etc.).
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::ConnectX4 => "CX-4",
            DeviceKind::ConnectX5 => "CX-5",
            DeviceKind::ConnectX6 => "CX-6",
        }
    }
}

impl core::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full parameter sheet of one simulated RNIC.
///
/// Construct via the presets ([`DeviceProfile::connectx4`] …) and tweak
/// fields for ablation studies. All rates are in the stated units; all
/// latencies are [`SimDuration`]s.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DeviceProfile {
    /// Which generation this profile models.
    pub kind: DeviceKind,
    /// Port speed in bits per second (Table III "Speed").
    pub port_rate_bps: u64,
    /// PCIe effective data rate per direction in bits per second
    /// (Table III "PCIe Interface", after encoding/TLP overheads).
    pub pcie_rate_bps: u64,
    /// Fixed PCIe round-trip latency component per DMA transaction.
    pub pcie_latency: SimDuration,
    /// Gaussian jitter (σ) on each PCIe transaction's latency — host-side
    /// arbitration noise. This decoheres the deterministic phase-locking
    /// that closed-loop flows would otherwise settle into.
    pub pcie_jitter_sigma: SimDuration,
    /// Link propagation delay to the switch.
    pub wire_propagation: SimDuration,
    /// Per-WQE processing time of the transmit processing unit.
    pub tx_pu_service: SimDuration,
    /// Per-packet processing time of the receive processing unit.
    pub rx_pu_service: SimDuration,
    /// Base translation & protection unit lookup time (aligned fast path).
    pub tpu_base: SimDuration,
    /// Extra TPU time when the address is not 8 B aligned.
    pub tpu_sub_word_penalty: SimDuration,
    /// Extra TPU time when the address is not 64 B aligned.
    pub tpu_token_penalty: SimDuration,
    /// Extra TPU time per additional 64 B token spanned by the access.
    pub tpu_per_token: SimDuration,
    /// Extra TPU time on a 2048 B row-buffer miss.
    pub tpu_row_miss_penalty: SimDuration,
    /// Number of 64 B-interleaved TPU banks.
    pub tpu_banks: usize,
    /// Number of row buffers (2048 B rows interleave across these).
    pub tpu_row_buffers: usize,
    /// Row size in bytes for the row-buffer model.
    pub tpu_row_bytes: u64,
    /// Extra TPU time to load a different MR's protection context.
    pub mr_context_switch_penalty: SimDuration,
    /// Number of MR protection contexts that stay resident.
    pub mr_context_slots: usize,
    /// Gaussian jitter (σ) added to every TPU access.
    pub tpu_jitter_sigma: SimDuration,
    /// MPT (memory protection table) cache entries.
    pub mpt_cache_entries: usize,
    /// MPT cache associativity.
    pub mpt_cache_ways: usize,
    /// Latency of fetching a missed MPT/MTT entry from host memory.
    pub mpt_miss_penalty: SimDuration,
    /// Writes at or below this size are posted inline through the
    /// doorbell path (no gather DMA). The Fig.-4 crossover point.
    pub inline_threshold: u64,
    /// Extra arbiter burst length granted to bulk (non-inline) writes:
    /// how many segments a granted message may send back-to-back.
    pub bulk_burst_segments: u32,
    /// Packets at or below this size count as "small" for the NoC
    /// activation heuristic.
    pub noc_small_threshold: u64,
    /// Number of distinct small-write flows required to activate the
    /// auxiliary NoC lane.
    pub noc_flows_to_activate: usize,
    /// TxPU service-time multiplier while the NoC lane is active
    /// (< 1.0 = faster).
    pub noc_speedup: f64,
    /// Window used to judge flow activity for NoC activation.
    pub noc_window: SimDuration,
    /// Per-NIC atomic unit service time (atomics serialize here).
    pub atomic_unit_service: SimDuration,
    /// Key Finding 3 ablation: strict Tx-over-Rx egress priority.
    pub tx_strict_priority: bool,
    /// Requester retransmission timeout per message.
    pub retransmit_timeout: SimDuration,
    /// Retransmission attempts before the WQE completes with
    /// [`crate::CqeStatus::RetryExceeded`].
    pub max_retries: u32,
    /// Receiver-not-ready NAKs tolerated per message before the QP
    /// errors out (the verbs `rnr_retry` budget; not time-scaled — it is
    /// a count, not a rate).
    pub rnr_retry_limit: u32,
    /// Send-queue capacity per QP (max WQEs outstanding).
    pub max_send_queue: usize,
    /// CQE DMA write time (completion delivery).
    pub cqe_delivery: SimDuration,
}

impl DeviceProfile {
    /// ConnectX-4 preset: 25 Gbps, PCIe 3.0 x8 (Table III).
    pub fn connectx4() -> Self {
        DeviceProfile {
            kind: DeviceKind::ConnectX4,
            port_rate_bps: 25_000_000_000,
            pcie_rate_bps: 62_000_000_000,
            pcie_latency: SimDuration::from_nanos(300),
            pcie_jitter_sigma: SimDuration::from_nanos(40),
            wire_propagation: SimDuration::from_nanos(500),
            tx_pu_service: SimDuration::from_nanos(95), // ~10.5 Mpps WQE issue
            rx_pu_service: SimDuration::from_nanos(40), // ~25 Mpps
            tpu_base: SimDuration::from_nanos(110),
            tpu_sub_word_penalty: SimDuration::from_nanos(28),
            tpu_token_penalty: SimDuration::from_nanos(55),
            tpu_per_token: SimDuration::from_nanos(9),
            tpu_row_miss_penalty: SimDuration::from_nanos(80),
            tpu_banks: 16,
            tpu_row_buffers: 2,
            tpu_row_bytes: 2048,
            mr_context_switch_penalty: SimDuration::from_nanos(180),
            mr_context_slots: 1,
            tpu_jitter_sigma: SimDuration::from_nanos(18),
            mpt_cache_entries: 2048,
            mpt_cache_ways: 8,
            mpt_miss_penalty: SimDuration::from_nanos(600),
            inline_threshold: 512,
            bulk_burst_segments: 8,
            noc_small_threshold: 256,
            noc_flows_to_activate: 2,
            noc_speedup: 0.45,
            noc_window: SimDuration::from_micros(5),
            atomic_unit_service: SimDuration::from_nanos(250),
            tx_strict_priority: true,
            retransmit_timeout: SimDuration::from_micros(100),
            max_retries: 7,
            rnr_retry_limit: 3,
            max_send_queue: 256,
            cqe_delivery: SimDuration::from_nanos(250),
        }
    }

    /// ConnectX-5 preset: 100 Gbps, PCIe 3.0 x8 (Table III).
    pub fn connectx5() -> Self {
        DeviceProfile {
            kind: DeviceKind::ConnectX5,
            port_rate_bps: 100_000_000_000,
            pcie_rate_bps: 62_000_000_000,
            pcie_latency: SimDuration::from_nanos(250),
            pcie_jitter_sigma: SimDuration::from_nanos(30),
            wire_propagation: SimDuration::from_nanos(500),
            tx_pu_service: SimDuration::from_nanos(40), // ~25 Mpps WQE issue
            rx_pu_service: SimDuration::from_nanos(25), // ~40 Mpps
            tpu_base: SimDuration::from_nanos(60),
            tpu_sub_word_penalty: SimDuration::from_nanos(16),
            tpu_token_penalty: SimDuration::from_nanos(30),
            tpu_per_token: SimDuration::from_nanos(5),
            tpu_row_miss_penalty: SimDuration::from_nanos(45),
            tpu_banks: 16,
            tpu_row_buffers: 2,
            tpu_row_bytes: 2048,
            mr_context_switch_penalty: SimDuration::from_nanos(95),
            mr_context_slots: 1,
            tpu_jitter_sigma: SimDuration::from_nanos(12),
            mpt_cache_entries: 4096,
            mpt_cache_ways: 8,
            mpt_miss_penalty: SimDuration::from_nanos(500),
            inline_threshold: 512,
            bulk_burst_segments: 8,
            noc_small_threshold: 256,
            noc_flows_to_activate: 2,
            noc_speedup: 0.45,
            noc_window: SimDuration::from_micros(5),
            atomic_unit_service: SimDuration::from_nanos(180),
            tx_strict_priority: true,
            retransmit_timeout: SimDuration::from_micros(100),
            max_retries: 7,
            rnr_retry_limit: 3,
            max_send_queue: 256,
            cqe_delivery: SimDuration::from_nanos(200),
        }
    }

    /// ConnectX-6 preset: 200 Gbps, PCIe 4.0 x16 (Table III).
    pub fn connectx6() -> Self {
        DeviceProfile {
            kind: DeviceKind::ConnectX6,
            port_rate_bps: 200_000_000_000,
            pcie_rate_bps: 252_000_000_000,
            pcie_latency: SimDuration::from_nanos(200),
            pcie_jitter_sigma: SimDuration::from_nanos(25),
            wire_propagation: SimDuration::from_nanos(500),
            tx_pu_service: SimDuration::from_nanos(22), // ~45 Mpps WQE issue
            rx_pu_service: SimDuration::from_nanos(12), // ~80 Mpps
            tpu_base: SimDuration::from_nanos(45),
            tpu_sub_word_penalty: SimDuration::from_nanos(12),
            tpu_token_penalty: SimDuration::from_nanos(24),
            tpu_per_token: SimDuration::from_nanos(4),
            tpu_row_miss_penalty: SimDuration::from_nanos(35),
            tpu_banks: 32,
            tpu_row_buffers: 4,
            tpu_row_bytes: 2048,
            mr_context_switch_penalty: SimDuration::from_nanos(70),
            mr_context_slots: 1,
            tpu_jitter_sigma: SimDuration::from_nanos(9),
            mpt_cache_entries: 8192,
            mpt_cache_ways: 16,
            mpt_miss_penalty: SimDuration::from_nanos(420),
            inline_threshold: 512,
            bulk_burst_segments: 8,
            noc_small_threshold: 256,
            noc_flows_to_activate: 2,
            noc_speedup: 0.45,
            noc_window: SimDuration::from_micros(5),
            atomic_unit_service: SimDuration::from_nanos(140),
            tx_strict_priority: true,
            retransmit_timeout: SimDuration::from_micros(100),
            max_retries: 7,
            rnr_retry_limit: 3,
            max_send_queue: 256,
            cqe_delivery: SimDuration::from_nanos(160),
        }
    }

    /// Preset for a device kind.
    pub fn preset(kind: DeviceKind) -> Self {
        match kind {
            DeviceKind::ConnectX4 => Self::connectx4(),
            DeviceKind::ConnectX5 => Self::connectx5(),
            DeviceKind::ConnectX6 => Self::connectx6(),
        }
    }

    /// Returns a copy with all *bandwidths and processing rates* scaled
    /// down by `factor` (0 < factor ≤ 1), leaving fixed latencies
    /// untouched.
    ///
    /// Long-running experiments (the 1 s-per-bit Grain-I/II covert channel,
    /// the Fig.-4 sweep) use this to keep simulated event counts tractable
    /// while preserving every contention *ratio*; see `DESIGN.md`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn time_scaled(&self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor must be in (0, 1], got {factor}"
        );
        let mut p = self.clone();
        let inv = 1.0 / factor;
        p.port_rate_bps = ((p.port_rate_bps as f64) * factor).round() as u64;
        p.pcie_rate_bps = ((p.pcie_rate_bps as f64) * factor).round() as u64;
        p.tx_pu_service = p.tx_pu_service.mul_f64(inv);
        p.rx_pu_service = p.rx_pu_service.mul_f64(inv);
        p.tpu_base = p.tpu_base.mul_f64(inv);
        p.tpu_sub_word_penalty = p.tpu_sub_word_penalty.mul_f64(inv);
        p.tpu_token_penalty = p.tpu_token_penalty.mul_f64(inv);
        p.tpu_per_token = p.tpu_per_token.mul_f64(inv);
        p.tpu_row_miss_penalty = p.tpu_row_miss_penalty.mul_f64(inv);
        p.mr_context_switch_penalty = p.mr_context_switch_penalty.mul_f64(inv);
        p.tpu_jitter_sigma = p.tpu_jitter_sigma.mul_f64(inv);
        p.mpt_miss_penalty = p.mpt_miss_penalty.mul_f64(inv);
        p.atomic_unit_service = p.atomic_unit_service.mul_f64(inv);
        p.noc_window = p.noc_window.mul_f64(inv);
        // Protocol timers track the slowed data rates (a fixed timeout
        // would misfire under scaled serialization times).
        p.retransmit_timeout = p.retransmit_timeout.mul_f64(inv);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_iii() {
        let c4 = DeviceProfile::connectx4();
        let c5 = DeviceProfile::connectx5();
        let c6 = DeviceProfile::connectx6();
        assert_eq!(c4.port_rate_bps, 25_000_000_000);
        assert_eq!(c5.port_rate_bps, 100_000_000_000);
        assert_eq!(c6.port_rate_bps, 200_000_000_000);
        // PCIe 3.0 x8 for CX-4/5, PCIe 4.0 x16 for CX-6.
        assert_eq!(c4.pcie_rate_bps, c5.pcie_rate_bps);
        assert!(c6.pcie_rate_bps > 3 * c4.pcie_rate_bps);
    }

    #[test]
    fn newer_devices_are_faster() {
        let c4 = DeviceProfile::connectx4();
        let c5 = DeviceProfile::connectx5();
        let c6 = DeviceProfile::connectx6();
        assert!(c5.tx_pu_service < c4.tx_pu_service);
        assert!(c6.tx_pu_service < c5.tx_pu_service);
        assert!(c5.tpu_base < c4.tpu_base);
        assert!(c6.tpu_base < c5.tpu_base);
    }

    #[test]
    fn time_scaling_preserves_latency_and_scales_rates() {
        let base = DeviceProfile::connectx5();
        let scaled = base.time_scaled(0.01);
        assert_eq!(scaled.port_rate_bps, base.port_rate_bps / 100);
        assert_eq!(scaled.pcie_latency, base.pcie_latency);
        assert_eq!(scaled.wire_propagation, base.wire_propagation);
        assert_eq!(
            scaled.tx_pu_service.as_picos(),
            base.tx_pu_service.as_picos() * 100
        );
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn zero_scale_rejected() {
        let _ = DeviceProfile::connectx4().time_scaled(0.0);
    }

    #[test]
    fn preset_round_trip() {
        for kind in DeviceKind::ALL {
            assert_eq!(DeviceProfile::preset(kind).kind, kind);
            assert!(!kind.name().is_empty());
        }
    }
}
