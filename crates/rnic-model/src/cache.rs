//! A small set-associative LRU cache model.
//!
//! Used for the RNIC's on-chip MPT/MTT caches. Pythia's persistent-channel
//! baseline attacks exactly this structure; Ragnar's volatile channels do
//! not depend on it, which is why they survive cache-randomization
//! defenses.

/// A set-associative cache with LRU replacement over opaque `u64` tags.
///
/// # Examples
///
/// ```
/// use rnic_model::SetAssocCache;
///
/// let mut c = SetAssocCache::new(4, 2); // 4 entries, 2-way => 2 sets
/// assert!(!c.access(0)); // cold miss
/// assert!(c.access(0));  // hit
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    ways: usize,
    sets: usize,
    /// `sets × ways` tags; `None` = invalid. Most-recently-used first
    /// within each set (small `ways`, so a shift is cheap and exactly LRU).
    lines: Vec<Vec<Option<u64>>>,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates a cache with `entries` total lines and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero, `entries` is zero, or `entries` is not a
    /// multiple of `ways`.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(ways > 0 && entries > 0, "cache geometry must be positive");
        assert!(
            entries.is_multiple_of(ways),
            "entries ({entries}) must be a multiple of ways ({ways})"
        );
        let sets = entries / ways;
        SetAssocCache {
            ways,
            sets,
            lines: vec![vec![None; ways]; sets],
            hits: 0,
            misses: 0,
        }
    }

    /// Number of sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn way_count(&self) -> usize {
        self.ways
    }

    fn set_of(&self, tag: u64) -> usize {
        // Multiplicative hash so adjacent tags spread across sets, then
        // index.
        (tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.sets
    }

    /// Accesses `tag`: returns `true` on hit. Misses install the tag,
    /// evicting the LRU way of its set.
    pub fn access(&mut self, tag: u64) -> bool {
        let set = self.set_of(tag);
        let ways = &mut self.lines[set];
        if let Some(pos) = ways.iter().position(|w| *w == Some(tag)) {
            // Move to MRU position.
            let line = ways.remove(pos);
            ways.insert(0, line);
            self.hits += 1;
            true
        } else {
            ways.pop();
            ways.insert(0, Some(tag));
            self.misses += 1;
            false
        }
    }

    /// True if `tag` is currently resident (no LRU update, no counter
    /// update).
    pub fn probe(&self, tag: u64) -> bool {
        self.lines[self.set_of(tag)].contains(&Some(tag))
    }

    /// Invalidates `tag` if resident; returns whether it was.
    pub fn invalidate(&mut self, tag: u64) -> bool {
        let set = self.set_of(tag);
        if let Some(pos) = self.lines[set].iter().position(|w| *w == Some(tag)) {
            self.lines[set][pos] = None;
            // Keep invalid lines at LRU end.
            let line = self.lines[set].remove(pos);
            self.lines[set].push(line);
            true
        } else {
            false
        }
    }

    /// Flushes the whole cache.
    pub fn flush(&mut self) {
        for set in &mut self.lines {
            for way in set.iter_mut() {
                *way = None;
            }
        }
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio in `[0, 1]` (zero before any access).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Tags that would evict `victim` when accessed: distinct tags mapping
    /// to the same set. Used by the Pythia baseline to construct eviction
    /// sets, mirroring its reverse-engineering step.
    pub fn eviction_set(&self, victim: u64, count: usize) -> Vec<u64> {
        let set = self.set_of(victim);
        let mut out = Vec::with_capacity(count);
        let mut candidate = victim.wrapping_add(1);
        while out.len() < count {
            if self.set_of(candidate) == set && candidate != victim {
                out.push(candidate);
            }
            candidate = candidate.wrapping_add(1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_install() {
        let mut c = SetAssocCache::new(16, 4);
        assert!(!c.access(42));
        assert!(c.access(42));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hit_ratio(), 0.5);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = SetAssocCache::new(2, 2); // one set, 2 ways
        c.access(1);
        c.access(2);
        c.access(1); // 1 becomes MRU, 2 is LRU
        c.access(3); // evicts 2
        assert!(c.probe(1));
        assert!(!c.probe(2));
        assert!(c.probe(3));
    }

    #[test]
    fn eviction_set_conflicts() {
        let c = SetAssocCache::new(64, 4);
        let victim = 7;
        let ev = c.eviction_set(victim, 8);
        assert_eq!(ev.len(), 8);
        let mut fresh = SetAssocCache::new(64, 4);
        fresh.access(victim);
        for &t in &ev {
            fresh.access(t);
        }
        assert!(
            !fresh.probe(victim),
            "accessing a full eviction set must evict the victim"
        );
    }

    #[test]
    fn invalidate_and_flush() {
        let mut c = SetAssocCache::new(8, 2);
        c.access(5);
        assert!(c.invalidate(5));
        assert!(!c.probe(5));
        assert!(!c.invalidate(5));
        c.access(6);
        c.flush();
        assert!(!c.probe(6));
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn bad_geometry_panics() {
        let _ = SetAssocCache::new(10, 4);
    }
}
