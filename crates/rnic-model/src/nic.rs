//! The RNIC datapath state machine: Fig. 3 of the paper in executable
//! form.
//!
//! A [`Rnic`] owns every per-NIC contended resource — PCIe directions,
//! transmit/receive processing units, the translation & protection unit,
//! the atomic unit, the egress port scheduler and the ingress link — plus
//! the host's memory. The verbs layer drives it through [`Rnic::post_send`]
//! / [`Rnic::post_recv`] and a global event loop: every handler returns
//! [`NicAction`]s that the loop turns into future events, fabric
//! hand-offs, or application completions.
//!
//! ## Pipeline
//!
//! Requester Tx: doorbell → WQE fetch (PCIe) → Tx issue arbiter → TxPU
//! (NoC-aware) → [gather DMA for non-inline payloads] → egress scheduler
//! (Tx class) → wire.
//!
//! Responder Rx: ingress link → RxPU → TPU (validate + offset-dependent
//! lookup) → DMA (PCIe) → response generation → egress scheduler (Rx
//! class, lower priority) → wire.
//!
//! Requester completion: RxPU → payload DMA → CQE write (PCIe) →
//! completion to the application.

use crate::arbiter::{EgressClass, EgressItem, EgressScheduler};
use crate::arena::{PacketArena, PacketHandle};
use crate::counters::NicCounters;
use crate::device::DeviceProfile;
use crate::memory::HostMemory;
use crate::noc::NocActivation;
use crate::packet::{segment_count, Cqe, CqeStatus, Packet, PacketKind, RecvWqe, Wqe};
use crate::tpu::{MrEntry, TpuAccess, TranslationUnit};
use crate::types::{wire, FlowId, HostId, MrKey, NakReason, Opcode, PdId, QpNum, TrafficClass};
use bytes::Bytes;
use ragnar_telemetry::{ActorId, ArgValue, Target, Tracer};
use sim_core::FxHashMap;
use sim_core::{LinkResource, ServiceResource, SimDuration, SimRng, SimTime};
use std::collections::VecDeque;

/// Size of a WQE on the PCIe bus.
const WQE_BYTES: u64 = 64;
/// Size of a CQE on the PCIe bus.
const CQE_BYTES: u64 = 64;

/// Configuration of a queue pair at creation time.
#[derive(Debug, Clone, Copy)]
pub struct QpConfig {
    /// Protection domain the QP belongs to.
    pub pd: PdId,
    /// Traffic class stamped on outgoing packets.
    pub tc: TrafficClass,
    /// Application flow label.
    pub flow: FlowId,
    /// Remote host this RC QP is connected to.
    pub peer_host: HostId,
    /// Remote QP number.
    pub peer_qp: QpNum,
    /// Maximum WQEs outstanding (posted, not yet completed).
    pub max_send_queue: usize,
}

/// Transport state of an RC queue pair (the RTS/Error slice of the verbs
/// QP state machine that matters to the datapath).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QpTransport {
    /// Ready to send: WQEs flow through the pipeline normally.
    Ready,
    /// A fatal transport error occurred (retry exhaustion, RNR budget
    /// exhaustion). Posted work flushes with [`CqeStatus::Flushed`]; new
    /// posts are rejected until [`Rnic::reset_qp`].
    Error,
}

#[derive(Debug)]
struct QpState {
    config: QpConfig,
    transport: QpTransport,
    sq: VecDeque<Wqe>,
    outstanding: usize,
    recv_queue: VecDeque<RecvWqe>,
    /// Next per-QP WQE sequence assigned at post time.
    next_seq: u64,
    /// Next sequence expected to retire (send completions).
    retire_seq: u64,
    /// Completions waiting for earlier WQEs to retire first.
    retire_hold: std::collections::BTreeMap<u64, (SimTime, Cqe)>,
    /// Monotonic CQE delivery clock for this QP.
    retire_clock: SimTime,
}

/// Why a post was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostError {
    /// The QP number is unknown.
    UnknownQp,
    /// The send queue is full (`max_send_queue` outstanding).
    SendQueueFull,
    /// The QP is in the Error state; [`Rnic::reset_qp`] it first.
    QpInError,
}

impl core::fmt::Display for PostError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PostError::UnknownQp => f.write_str("unknown queue pair"),
            PostError::SendQueueFull => f.write_str("send queue full"),
            PostError::QpInError => f.write_str("queue pair is in the Error state"),
        }
    }
}

impl std::error::Error for PostError {}

/// Why a [`Rnic::reset_qp`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResetError {
    /// The QP number is unknown.
    UnknownQp,
    /// The QP is not in the Error state (nothing to recover from).
    NotInError,
    /// Flushed completions are still draining; poll them first so no
    /// completion is lost across the reset.
    CompletionsPending,
}

impl core::fmt::Display for ResetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ResetError::UnknownQp => f.write_str("unknown queue pair"),
            ResetError::NotInError => f.write_str("queue pair is not in the Error state"),
            ResetError::CompletionsPending => {
                f.write_str("flushed completions still pending; drain the CQ before reset")
            }
        }
    }
}

impl std::error::Error for ResetError {}

/// Internal pipeline events of one NIC.
#[derive(Debug, Clone)]
pub enum NicEvent {
    /// A WQE finished its PCIe fetch and is ready for arbitration.
    WqeFetched {
        /// Owning QP.
        qp: QpNum,
        /// The descriptor.
        wqe: Wqe,
    },
    /// Tx issue arbiter tick: try to push the next WQE into the TxPU.
    TxIssue,
    /// TxPU finished processing a WQE.
    TxPuDone {
        /// Owning QP.
        qp: QpNum,
        /// The descriptor.
        wqe: Wqe,
    },
    /// Gather DMA for a non-inline payload finished.
    GatherDone {
        /// Owning QP.
        qp: QpNum,
        /// The descriptor.
        wqe: Wqe,
    },
    /// A request is ready to enter the egress scheduler (in per-QP WQE
    /// order).
    RequestReady {
        /// Owning QP.
        qp: QpNum,
        /// The descriptor.
        wqe: Wqe,
    },
    /// The egress port finished serializing one packet.
    EgressDone,
    /// A packet arrived from the fabric at the ingress link.
    IngressArrival {
        /// The packet (held by the world's [`PacketArena`]).
        pkt: PacketHandle,
    },
    /// A packet was fully received and enters the Rx pipeline.
    RxPacket {
        /// The packet.
        pkt: PacketHandle,
    },
    /// RxPU parsing finished.
    RxPuDone {
        /// The packet.
        pkt: PacketHandle,
    },
    /// The TPU lookup for an inbound request finished.
    TpuDone {
        /// The packet.
        pkt: PacketHandle,
    },
    /// A host-memory DMA transaction for this packet finished.
    DmaDone {
        /// The packet.
        pkt: PacketHandle,
    },
    /// The atomic execution unit finished.
    AtomicExecDone {
        /// The packet.
        pkt: PacketHandle,
    },
    /// The CQE DMA write finished; deliver the completion.
    CqeWrite {
        /// The completion.
        cqe: Cqe,
    },
    /// Retransmission timer for an in-flight message.
    RetransmitCheck {
        /// Owning QP.
        qp: QpNum,
        /// The message to check.
        msg_id: u64,
    },
}

impl NicEvent {
    /// The packet handle this event carries, if any — the worker-boundary
    /// code uses this to detach the packet from one arena and re-attach
    /// it to another, patching the handle in place.
    pub fn packet_handle_mut(&mut self) -> Option<&mut PacketHandle> {
        match self {
            NicEvent::IngressArrival { pkt }
            | NicEvent::RxPacket { pkt }
            | NicEvent::RxPuDone { pkt }
            | NicEvent::TpuDone { pkt }
            | NicEvent::DmaDone { pkt }
            | NicEvent::AtomicExecDone { pkt } => Some(pkt),
            _ => None,
        }
    }
}

/// Effects a NIC handler asks the world to carry out.
#[derive(Debug, Clone)]
pub enum NicAction {
    /// Schedule a future event on this same NIC.
    Schedule {
        /// Absolute fire time.
        at: SimTime,
        /// The event.
        event: NicEvent,
    },
    /// Hand a packet to the fabric at `at` (it departed the egress port).
    Transmit {
        /// Departure instant.
        at: SimTime,
        /// The packet.
        pkt: PacketHandle,
    },
    /// Deliver a completion to the application at `at`.
    Complete {
        /// Delivery instant.
        at: SimTime,
        /// The completion.
        cqe: Cqe,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AssemblyState {
    /// Segments are being assembled in order. `next_seg` is the segment
    /// index the responder (or requester, for responses) will accept
    /// next; `placed` counts segments whose host-memory DMA finished.
    Receiving {
        next_seg: u32,
        placed: u32,
    },
    Failed,
}

/// A requester message awaiting its response, for retransmission.
#[derive(Debug, Clone)]
struct Inflight {
    qp: QpNum,
    wqe: Wqe,
    /// Timeout retransmissions performed so far.
    retries: u32,
    /// Receiver-not-ready NAKs absorbed so far.
    rnr_retries: u32,
}

/// Exponential-backoff cap: the retransmission timeout doubles per retry
/// up to `timeout << RETRY_BACKOFF_CAP`.
const RETRY_BACKOFF_CAP: u32 = 5;
/// Bounded replay caches (atomic results, completed inbound messages).
const REPLAY_CACHE_CAP: usize = 1024;

/// One simulated RDMA NIC plus its host memory.
#[derive(Debug)]
pub struct Rnic {
    host: HostId,
    profile: DeviceProfile,
    rng: SimRng,
    qps: FxHashMap<QpNum, QpState>,
    tpu: TranslationUnit,
    mem: HostMemory,
    pcie_up: ServiceResource,
    pcie_down: ServiceResource,
    tx_pu: ServiceResource,
    rx_pu: ServiceResource,
    atomic_unit: ServiceResource,
    egress: EgressScheduler,
    ingress: LinkResource,
    noc: NocActivation,
    counters: NicCounters,
    msg_seq: u64,
    issue_order: VecDeque<QpNum>,
    tx_issue_scheduled: bool,
    assembly: FxHashMap<(HostId, u64), AssemblyState>,
    recv_targets: FxHashMap<(HostId, u64), RecvWqe>,
    /// Responder-side placement ordering: a read (or atomic) on a QP must
    /// observe all earlier writes on that QP, even though DMA reads and
    /// writes use different PCIe directions.
    placement_fence: FxHashMap<QpNum, SimTime>,
    /// Requester-side WQE ordering: per-QP fetch completions are
    /// monotonic so PCIe jitter can never reorder WQEs within a QP.
    wqe_fetch_fence: FxHashMap<QpNum, SimTime>,
    /// Responder-side RC ordering: requests of one QP leave the TPU in
    /// PSN order even when they hit different banks.
    responder_order: FxHashMap<QpNum, SimTime>,
    /// Responder-side RC ordering, DMA stage: host-memory effects of one
    /// QP's requests happen in PSN order (reads snapshot before later
    /// writes land — the anti-dependency).
    responder_dma_order: FxHashMap<QpNum, SimTime>,
    /// Requester-side RC ordering: requests of one QP enter the egress
    /// scheduler in WQE order (a gathered write cannot be overtaken by a
    /// later inline op).
    requester_order: FxHashMap<QpNum, SimTime>,
    /// In-flight messages awaiting completion, for retransmission.
    inflight: FxHashMap<u64, Inflight>,
    /// Responder replay cache for atomics: a retransmitted atomic must
    /// not execute twice (RC exactly-once semantics), so the old value is
    /// replayed from here. Bounded FIFO per NIC.
    atomic_replay: FxHashMap<(HostId, u64), u64>,
    atomic_replay_order: VecDeque<(HostId, u64)>,
    /// Responder replay cache for writes/sends: a message retransmitted
    /// because its Ack was lost must not complete (or write a recv WQE)
    /// twice; replays are dropped and the last segment re-Acked. Bounded
    /// FIFO per NIC.
    completed_inbound: std::collections::HashSet<(HostId, u64)>,
    completed_inbound_order: VecDeque<(HostId, u64)>,
    /// Ambient telemetry handle captured at construction; disabled
    /// outside a tracing session (one branch per instrumentation site).
    tracer: Tracer,
}

impl Rnic {
    /// Creates a NIC for `host` with the given device profile and RNG
    /// seed stream.
    pub fn new(host: HostId, profile: DeviceProfile, seed: u64) -> Self {
        let mut egress = EgressScheduler::new(profile.port_rate_bps);
        egress.set_bulk_burst(profile.bulk_burst_segments, profile.inline_threshold);
        egress.set_tx_strict_priority(profile.tx_strict_priority);
        let ingress = LinkResource::new(profile.port_rate_bps);
        let tpu = TranslationUnit::new(&profile);
        let noc = NocActivation::new(
            profile.noc_small_threshold,
            profile.noc_flows_to_activate,
            profile.noc_window,
        );
        Rnic {
            host,
            rng: SimRng::derive(seed, &format!("rnic-{}", host.0)),
            qps: FxHashMap::default(),
            tpu,
            mem: HostMemory::new(),
            pcie_up: ServiceResource::new(),
            pcie_down: ServiceResource::new(),
            tx_pu: ServiceResource::new(),
            rx_pu: ServiceResource::new(),
            atomic_unit: ServiceResource::new(),
            egress,
            ingress,
            noc,
            counters: NicCounters::new(),
            msg_seq: 0,
            issue_order: VecDeque::new(),
            tx_issue_scheduled: false,
            assembly: FxHashMap::default(),
            recv_targets: FxHashMap::default(),
            placement_fence: FxHashMap::default(),
            wqe_fetch_fence: FxHashMap::default(),
            responder_order: FxHashMap::default(),
            responder_dma_order: FxHashMap::default(),
            requester_order: FxHashMap::default(),
            inflight: FxHashMap::default(),
            atomic_replay: FxHashMap::default(),
            atomic_replay_order: VecDeque::new(),
            completed_inbound: std::collections::HashSet::new(),
            completed_inbound_order: VecDeque::new(),
            profile,
            tracer: ragnar_telemetry::tracer(),
        }
    }

    /// Whether datapath tracing is enabled — the per-site guard.
    #[inline]
    fn trace_on(&self) -> bool {
        self.tracer.enabled(Target::RnicModel)
    }

    /// Telemetry actor for one of this NIC's QPs.
    fn actor(&self, qp: QpNum) -> ActorId {
        ActorId::qp(self.host.0, qp.0)
    }

    /// Records a pipeline-stage span covering `start..end` on `qp`.
    fn trace_stage(&self, name: &'static str, qp: QpNum, start: SimTime, end: SimTime) {
        self.tracer.span(
            Target::RnicModel,
            name,
            self.actor(qp),
            start.as_picos(),
            (end - start).as_picos(),
            &[],
        );
    }

    /// Records a TPU translation span with the microarchitectural cost
    /// components that matter for the paper's ULI channel as args.
    fn trace_tpu(&self, pkt: &Packet, access: &TpuAccess) {
        let r = access.reservation;
        self.tracer.span(
            Target::RnicModel,
            "tpu",
            self.actor(pkt.dst_qp),
            r.start.as_picos(),
            (r.end - r.start).as_picos(),
            &[
                ("opcode", ArgValue::Str(pkt.opcode.name())),
                ("mr_switch_ps", access.breakdown.mr_switch.as_picos().into()),
                ("row_miss_ps", access.breakdown.row_miss.as_picos().into()),
                ("mr_offset", access.mr_offset.into()),
            ],
        );
    }

    /// Records a NAK instant on the responder QP.
    fn trace_nak(&self, now: SimTime, pkt: &Packet, reason: NakReason) {
        if self.trace_on() {
            self.tracer.instant(
                Target::RnicModel,
                "nak",
                self.actor(pkt.dst_qp),
                now.as_picos(),
                &[("reason", ArgValue::Str(reason.name()))],
            );
        }
    }

    /// This NIC's host id.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// The device profile in use.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Creates (connects) an RC queue pair.
    ///
    /// # Panics
    ///
    /// Panics if the QP number is already in use.
    pub fn create_qp(&mut self, num: QpNum, config: QpConfig) {
        let prev = self.qps.insert(
            num,
            QpState {
                config,
                transport: QpTransport::Ready,
                sq: VecDeque::new(),
                outstanding: 0,
                recv_queue: VecDeque::new(),
                next_seq: 0,
                retire_seq: 0,
                retire_hold: std::collections::BTreeMap::new(),
                retire_clock: SimTime::ZERO,
            },
        );
        assert!(prev.is_none(), "QP {num:?} already exists");
    }

    /// Registers a memory region with the translation unit.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered.
    pub fn register_mr(&mut self, entry: MrEntry) {
        self.tpu.register_mr(entry);
    }

    /// Deregisters an MR; returns whether it existed.
    pub fn deregister_mr(&mut self, key: MrKey) -> bool {
        self.tpu.deregister_mr(key)
    }

    /// ETS weights for the egress scheduler (`mlnx_qos` equivalent).
    pub fn set_ets_weights(&mut self, weights: [u32; TrafficClass::COUNT]) {
        self.egress.set_ets_weights(weights);
    }

    /// Pauses a traffic class until `until` (PFC).
    pub fn pause_tc(&mut self, tc: TrafficClass, until: SimTime) {
        self.egress.pause(tc, until);
    }

    /// Moves every packet still queued in this NIC's egress scheduler
    /// from one arena to another, patching the queued handles in place.
    /// Parallel engines call this when the NIC crosses a worker
    /// boundary; the sequential engine never needs it.
    pub fn rehome_egress(&mut self, from: &mut PacketArena, to: &mut PacketArena) {
        self.egress.rehome(from, to);
    }

    /// Counters (Grain-I/II/III observables).
    pub fn counters(&self) -> &NicCounters {
        &self.counters
    }

    /// Mutable counters — the fabric attributes wire-level drops
    /// (loss, link-down, ICRC) to the NICs on either end of the link.
    pub fn counters_mut(&mut self) -> &mut NicCounters {
        &mut self.counters
    }

    /// Transport state of a QP, or `None` if it does not exist.
    pub fn qp_transport(&self, qp: QpNum) -> Option<QpTransport> {
        self.qps.get(&qp).map(|s| s.transport)
    }

    /// Checks every QP's structural invariants — the legality conditions
    /// the online QP-state monitor samples during a run. Returns a
    /// description of the first violated invariant, or `None` when all
    /// QPs are legal:
    ///
    /// * `outstanding <= max_send_queue` (the admission check's bound);
    /// * `sq.len() <= outstanding` (queued-not-yet-issued WQEs are a
    ///   subset of outstanding ones);
    /// * `retire_seq <= next_seq` (in-order retirement never runs ahead
    ///   of issue).
    pub fn check_qp_invariants(&self) -> Option<String> {
        for (num, qp) in &self.qps {
            if qp.outstanding > qp.config.max_send_queue {
                return Some(format!(
                    "QP {}: outstanding {} exceeds max_send_queue {}",
                    num.0, qp.outstanding, qp.config.max_send_queue
                ));
            }
            if qp.sq.len() > qp.outstanding {
                return Some(format!(
                    "QP {}: send queue holds {} WQEs but only {} outstanding",
                    num.0,
                    qp.sq.len(),
                    qp.outstanding
                ));
            }
            if qp.retire_seq > qp.next_seq {
                return Some(format!(
                    "QP {}: retire_seq {} ran ahead of next_seq {}",
                    num.0, qp.retire_seq, qp.next_seq
                ));
            }
        }
        None
    }

    /// Forces a QP's `outstanding` past its configured bound — plants
    /// precisely the illegal state [`Rnic::check_qp_invariants`] must
    /// catch.
    #[doc(hidden)]
    pub fn debug_skew_qp_outstanding(&mut self, qp: QpNum) {
        if let Some(state) = self.qps.get_mut(&qp) {
            state.outstanding = state.config.max_send_queue + 1;
        }
    }

    /// Recovers a QP from the Error state (the verbs
    /// `Error → Reset → Init → RTR → RTS` cycle collapsed to one step —
    /// the simulator has no modify-qp latency model).
    ///
    /// # Errors
    ///
    /// [`ResetError::UnknownQp`] if the QP does not exist,
    /// [`ResetError::NotInError`] if it is not in the Error state, and
    /// [`ResetError::CompletionsPending`] while flushed completions are
    /// still draining (resetting then would lose them).
    pub fn reset_qp(&mut self, qp: QpNum) -> Result<(), ResetError> {
        let state = self.qps.get_mut(&qp).ok_or(ResetError::UnknownQp)?;
        if state.transport != QpTransport::Error {
            return Err(ResetError::NotInError);
        }
        if state.outstanding != 0 {
            return Err(ResetError::CompletionsPending);
        }
        state.transport = QpTransport::Ready;
        Ok(())
    }

    /// Host memory (for MR initialization and result inspection).
    pub fn memory(&self) -> &HostMemory {
        &self.mem
    }

    /// Mutable host memory.
    pub fn memory_mut(&mut self) -> &mut HostMemory {
        &mut self.mem
    }

    /// The translation unit (for defense/baseline instrumentation).
    pub fn tpu(&self) -> &TranslationUnit {
        &self.tpu
    }

    /// Mutable translation unit (noise-injection mitigation knob).
    pub fn tpu_mut(&mut self) -> &mut TranslationUnit {
        &mut self.tpu
    }

    /// Number of WQEs currently outstanding on a QP.
    pub fn outstanding(&self, qp: QpNum) -> Option<usize> {
        self.qps.get(&qp).map(|q| q.outstanding)
    }

    /// Times the auxiliary NoC lane switched on.
    pub fn noc_activations(&self) -> u64 {
        self.noc.activation_count()
    }

    /// PCIe completion latency with arbitration jitter.
    fn pcie_delay(&mut self) -> SimDuration {
        let base = self.profile.pcie_latency.as_picos() as f64;
        let j = self
            .rng
            .jitter_ps(self.profile.pcie_jitter_sigma.as_picos() as f64);
        SimDuration::from_picos((base + j).max(0.0).round() as u64)
    }

    fn next_msg_id(&mut self) -> u64 {
        self.msg_seq += 1;
        self.msg_seq
    }

    /// Posts a send-queue WQE. Returns the pipeline actions.
    ///
    /// # Errors
    ///
    /// [`PostError::UnknownQp`] if the QP does not exist;
    /// [`PostError::SendQueueFull`] if `max_send_queue` WQEs are already
    /// outstanding.
    pub fn post_send(
        &mut self,
        now: SimTime,
        qp: QpNum,
        wqe: Wqe,
    ) -> Result<Vec<NicAction>, PostError> {
        let mut out = Vec::new();
        self.post_send_into(now, qp, wqe, &mut out)?;
        Ok(out)
    }

    /// Allocation-free variant of [`post_send`](Self::post_send): appends
    /// the pipeline actions to `out` (the event loop reuses one scratch
    /// buffer across all dispatches). `out` is untouched on error.
    ///
    /// # Errors
    ///
    /// Same as [`post_send`](Self::post_send).
    pub fn post_send_into(
        &mut self,
        now: SimTime,
        qp: QpNum,
        mut wqe: Wqe,
        out: &mut Vec<NicAction>,
    ) -> Result<(), PostError> {
        let state = self.qps.get_mut(&qp).ok_or(PostError::UnknownQp)?;
        if state.transport == QpTransport::Error {
            return Err(PostError::QpInError);
        }
        if state.outstanding >= state.config.max_send_queue {
            return Err(PostError::SendQueueFull);
        }
        state.outstanding += 1;
        wqe.posted_at = now;
        wqe.seq = state.next_seq;
        state.next_seq += 1;
        let flow = state.config.flow;

        self.counters.requests_per_opcode[wqe.opcode.index()] += 1;
        if wqe.opcode == Opcode::Write {
            self.noc.note_write(now, flow, wqe.len);
        }

        // Doorbell + WQE fetch over PCIe.
        self.counters.wqes_fetched += 1;
        self.counters.pcie_bytes += WQE_BYTES;
        let ser = SimDuration::serialization(WQE_BYTES, self.profile.pcie_rate_bps);
        let res = self.pcie_up.reserve(now, ser);
        let mut ready = res.end + self.pcie_delay();
        // Verbs ordering: WQEs on one QP execute in post order, so fetch
        // completions must be monotonic per QP despite PCIe jitter.
        let fence = self.wqe_fetch_fence.entry(qp).or_insert(SimTime::ZERO);
        ready = ready.max_of(*fence);
        *fence = ready;
        out.push(NicAction::Schedule {
            at: ready,
            event: NicEvent::WqeFetched { qp, wqe },
        });
        Ok(())
    }

    /// Posts a receive WQE (for inbound Sends).
    ///
    /// # Errors
    ///
    /// [`PostError::UnknownQp`] if the QP does not exist;
    /// [`PostError::QpInError`] if it is in the Error state.
    pub fn post_recv(&mut self, qp: QpNum, recv: RecvWqe) -> Result<(), PostError> {
        let state = self.qps.get_mut(&qp).ok_or(PostError::UnknownQp)?;
        if state.transport == QpTransport::Error {
            return Err(PostError::QpInError);
        }
        state.recv_queue.push_back(recv);
        Ok(())
    }

    /// Handles one pipeline event, returning follow-up actions. In-flight
    /// packets live in `arena`; events reference them by handle.
    ///
    /// # Panics
    ///
    /// Panics on internal inconsistencies (events for unknown QPs, stale
    /// packet handles), which indicate a bug in the event loop rather
    /// than a recoverable condition.
    pub fn handle(
        &mut self,
        now: SimTime,
        event: NicEvent,
        arena: &mut PacketArena,
    ) -> Vec<NicAction> {
        let mut out = Vec::new();
        self.handle_into(now, event, arena, &mut out);
        out
    }

    /// Allocation-free variant of [`handle`](Self::handle): appends the
    /// follow-up actions to `out`, so the event loop can reuse one
    /// scratch buffer for every dispatch instead of allocating a fresh
    /// `Vec` per event.
    ///
    /// # Panics
    ///
    /// Same as [`handle`](Self::handle).
    pub fn handle_into(
        &mut self,
        now: SimTime,
        event: NicEvent,
        arena: &mut PacketArena,
        out: &mut Vec<NicAction>,
    ) {
        match event {
            NicEvent::WqeFetched { qp, wqe } => {
                let state = self.qps.get_mut(&qp).expect("WQE for unknown QP");
                if state.transport == QpTransport::Error {
                    // The QP failed while this WQE was in its PCIe fetch.
                    self.flush_send_wqe(now, qp, &wqe, out);
                    return;
                }
                if state.sq.is_empty() {
                    self.issue_order.push_back(qp);
                }
                state.sq.push_back(wqe);
                self.schedule_tx_issue(now, now, out);
            }
            NicEvent::TxIssue => {
                self.tx_issue_scheduled = false;
                self.tx_issue(now, out);
            }
            NicEvent::TxPuDone { qp, wqe } => {
                if self.qp_in_error(qp) {
                    self.flush_send_wqe(now, qp, &wqe, out);
                    return;
                }
                let needs_gather =
                    wqe.opcode.carries_request_payload() && wqe.len > self.profile.inline_threshold;
                if needs_gather {
                    self.counters.pcie_bytes += wqe.len;
                    let ser = SimDuration::serialization(wqe.len, self.profile.pcie_rate_bps);
                    let delay = self.pcie_delay();
                    let res = self.pcie_up.reserve(now, ser);
                    // Claim the per-QP hand-off slot now so later WQEs of
                    // this QP cannot slip past while the gather runs.
                    let at = self.requester_fence(qp, res.end + delay);
                    out.push(NicAction::Schedule {
                        at,
                        event: NicEvent::GatherDone { qp, wqe },
                    });
                } else {
                    let at = self.requester_fence(qp, now);
                    out.push(NicAction::Schedule {
                        at,
                        event: NicEvent::RequestReady { qp, wqe },
                    });
                }
            }
            NicEvent::GatherDone { qp, wqe } => {
                // The gather claimed the hand-off fence when it started,
                // and this event was inserted before any later WQE's
                // RequestReady, so enqueueing directly preserves FIFO
                // order at equal timestamps.
                self.enqueue_request(now, qp, wqe, arena, out);
            }
            NicEvent::RequestReady { qp, wqe } => {
                self.enqueue_request(now, qp, wqe, arena, out);
            }
            NicEvent::EgressDone => {
                self.egress.complete_transmission();
                self.kick_egress(now, out);
            }
            NicEvent::IngressArrival { pkt } => {
                let res = self
                    .ingress
                    .transmit(now, u64::from(arena.hot(pkt).wire_bytes));
                out.push(NicAction::Schedule {
                    at: res.end,
                    event: NicEvent::RxPacket { pkt },
                });
            }
            NicEvent::RxPacket { pkt } => {
                let hot = *arena.hot(pkt);
                let wire = u64::from(hot.wire_bytes);
                self.counters.rx_bytes += wire;
                self.counters.rx_packets += 1;
                self.counters.rx_bytes_per_tc[hot.tc.index()] += wire;
                let res = self.rx_pu.reserve(now, self.profile.rx_pu_service);
                if self.trace_on() {
                    self.trace_stage("rx_pu", arena.get(pkt).dst_qp, res.start, res.end);
                }
                out.push(NicAction::Schedule {
                    at: res.end,
                    event: NicEvent::RxPuDone { pkt },
                });
            }
            NicEvent::RxPuDone { pkt } => self.rx_pu_done(now, pkt, arena, out),
            NicEvent::TpuDone { pkt } => self.tpu_done(now, pkt, arena, out),
            NicEvent::DmaDone { pkt } => self.dma_done(now, pkt, arena, out),
            NicEvent::AtomicExecDone { pkt } => self.atomic_done(now, pkt, arena, out),
            NicEvent::CqeWrite { cqe } => {
                if !cqe.is_recv {
                    if let Some(state) = self.qps.get_mut(&cqe.qp) {
                        state.outstanding = state.outstanding.saturating_sub(1);
                    }
                }
                self.counters.cqes_delivered += 1;
                out.push(NicAction::Complete { at: now, cqe });
            }
            NicEvent::RetransmitCheck { qp, msg_id } => {
                self.retransmit_check(now, qp, msg_id, arena, out);
            }
        }
    }

    fn schedule_tx_issue(&mut self, now: SimTime, at: SimTime, out: &mut Vec<NicAction>) {
        let _ = now;
        if !self.tx_issue_scheduled {
            self.tx_issue_scheduled = true;
            out.push(NicAction::Schedule {
                at,
                event: NicEvent::TxIssue,
            });
        }
    }

    fn tx_issue(&mut self, now: SimTime, out: &mut Vec<NicAction>) {
        if self.tx_pu.next_free() > now {
            let at = self.tx_pu.next_free();
            self.schedule_tx_issue(now, at, out);
            return;
        }
        // Round-robin across QPs with pending WQEs.
        let qp = loop {
            match self.issue_order.pop_front() {
                None => return, // nothing pending
                Some(qp) => {
                    if self.qps.get(&qp).is_some_and(|s| !s.sq.is_empty()) {
                        break qp;
                    }
                }
            }
        };
        let state = self.qps.get_mut(&qp).expect("issue for unknown QP");
        let wqe = state.sq.pop_front().expect("non-empty SQ");
        if !state.sq.is_empty() {
            self.issue_order.push_back(qp);
        }

        // Per-WQE TxPU cost, amortized descriptor work for multi-segment
        // messages, NoC speedup when the auxiliary lane is engaged.
        let segs = if wqe.opcode.carries_request_payload() {
            segment_count(wqe.len)
        } else {
            1
        };
        let mut service = self
            .profile
            .tx_pu_service
            .mul_f64(1.0 + 0.25 * (segs as f64 - 1.0));
        if self.noc.is_active(now) {
            service = service.mul_f64(self.profile.noc_speedup);
        }
        let res = self.tx_pu.reserve(now, service);
        if self.trace_on() {
            self.tracer.span(
                Target::RnicModel,
                "tx_pu",
                self.actor(qp),
                res.start.as_picos(),
                (res.end - res.start).as_picos(),
                &[("opcode", ArgValue::Str(wqe.opcode.name()))],
            );
        }
        out.push(NicAction::Schedule {
            at: res.end,
            event: NicEvent::TxPuDone { qp, wqe },
        });
        if !self.issue_order.is_empty() {
            self.schedule_tx_issue(now, res.end, out);
        }
    }

    fn qp_in_error(&self, qp: QpNum) -> bool {
        self.qps
            .get(&qp)
            .is_some_and(|s| s.transport == QpTransport::Error)
    }

    /// Completes a WQE with [`CqeStatus::Flushed`] through the ordered
    /// retirement path (the QP entered the Error state before this WQE
    /// reached the wire).
    fn flush_send_wqe(&mut self, now: SimTime, qp: QpNum, wqe: &Wqe, out: &mut Vec<NicAction>) {
        self.counters.wqes_flushed += 1;
        let cqe = Cqe {
            qp,
            wr_id: wqe.wr_id,
            status: CqeStatus::Flushed,
            opcode: wqe.opcode,
            byte_len: wqe.len,
            posted_at: wqe.posted_at,
            completed_at: now,
            is_recv: false,
            atomic_old_value: 0,
        };
        self.retire_ordered(now, qp, wqe.seq, cqe, out);
    }

    /// Transitions a QP to the Error state: the WQE that hit the fatal
    /// condition completes with `status`, and everything else queued or
    /// in flight on the QP flushes with [`CqeStatus::Flushed`] (send and
    /// receive queues both, matching verbs error semantics).
    fn fail_qp(
        &mut self,
        now: SimTime,
        qp: QpNum,
        trigger_msg: u64,
        status: CqeStatus,
        out: &mut Vec<NicAction>,
    ) {
        if let Some(entry) = self.inflight.remove(&trigger_msg) {
            self.assembly.remove(&(self.host, trigger_msg));
            let cqe = Cqe {
                qp,
                wr_id: entry.wqe.wr_id,
                status,
                opcode: entry.wqe.opcode,
                byte_len: entry.wqe.len,
                posted_at: entry.wqe.posted_at,
                completed_at: now,
                is_recv: false,
                atomic_old_value: 0,
            };
            self.retire_ordered(now, qp, entry.wqe.seq, cqe, out);
        }
        let Some(state) = self.qps.get_mut(&qp) else {
            return;
        };
        if state.transport == QpTransport::Error {
            return;
        }
        state.transport = QpTransport::Error;
        self.counters.qp_fatal_errors += 1;
        if self.trace_on() {
            self.tracer.instant(
                Target::RnicModel,
                "qp_error",
                self.actor(qp),
                now.as_picos(),
                &[
                    ("status", ArgValue::Str(status.name())),
                    ("trigger_msg", trigger_msg.into()),
                ],
            );
        }
        let state = self.qps.get_mut(&qp).expect("state just accessed");
        let queued: Vec<Wqe> = state.sq.drain(..).collect();
        let recvs: Vec<RecvWqe> = state.recv_queue.drain(..).collect();
        // Other messages of this QP still on the wire flush too; their
        // pending RetransmitCheck timers will find no inflight entry.
        let mut wire: Vec<(u64, Wqe)> = self
            .inflight
            .iter()
            .filter(|(_, e)| e.qp == qp)
            .map(|(&m, e)| (m, e.wqe.clone()))
            .collect();
        wire.sort_by_key(|(_, w)| w.seq);
        for (m, _) in &wire {
            self.inflight.remove(m);
            self.assembly.remove(&(self.host, *m));
        }
        for (_, w) in &wire {
            self.flush_send_wqe(now, qp, w, out);
        }
        for w in &queued {
            self.flush_send_wqe(now, qp, w, out);
        }
        for r in recvs {
            self.counters.wqes_flushed += 1;
            let cqe = Cqe {
                qp,
                wr_id: r.wr_id,
                status: CqeStatus::Flushed,
                opcode: Opcode::Send,
                byte_len: r.len,
                posted_at: now,
                completed_at: now,
                is_recv: true,
                atomic_old_value: 0,
            };
            self.schedule_cqe_write(now, cqe, out);
        }
    }

    fn enqueue_request(
        &mut self,
        now: SimTime,
        qp: QpNum,
        wqe: Wqe,
        arena: &mut PacketArena,
        out: &mut Vec<NicAction>,
    ) {
        if self.qp_in_error(qp) {
            self.flush_send_wqe(now, qp, &wqe, out);
            return;
        }
        let msg_id = self.next_msg_id();
        // Arm the retransmission machinery for this message.
        self.inflight.insert(
            msg_id,
            Inflight {
                qp,
                wqe: wqe.clone(),
                retries: 0,
                rnr_retries: 0,
            },
        );
        out.push(NicAction::Schedule {
            at: now + self.profile.retransmit_timeout,
            event: NicEvent::RetransmitCheck { qp, msg_id },
        });
        self.send_request_packets(now, qp, wqe, msg_id, arena, out);
    }

    /// Builds and enqueues the wire packets of one message (also used on
    /// retransmission, where `msg_id` is reused so the responder can
    /// deduplicate).
    fn send_request_packets(
        &mut self,
        now: SimTime,
        qp: QpNum,
        wqe: Wqe,
        msg_id: u64,
        arena: &mut PacketArena,
        out: &mut Vec<NicAction>,
    ) {
        let config = self.qps.get(&qp).expect("unknown QP").config;
        let (kind, seg_cnt, payload) = match wqe.opcode {
            Opcode::Read => (PacketKind::ReadReq, 1u32, Bytes::new()),
            Opcode::Write => (
                PacketKind::WriteSeg,
                segment_count(wqe.len),
                Bytes::from(self.mem.read(wqe.local_addr, wqe.len)),
            ),
            Opcode::Send => (
                PacketKind::SendSeg,
                segment_count(wqe.len),
                Bytes::from(self.mem.read(wqe.local_addr, wqe.len)),
            ),
            Opcode::AtomicFetchAdd | Opcode::AtomicCmpSwap => {
                (PacketKind::AtomicReq, 1, Bytes::new())
            }
        };
        for seg in 0..seg_cnt {
            let seg_payload = if payload.is_empty() {
                Bytes::new()
            } else {
                let lo = (seg as u64 * wire::MTU) as usize;
                let hi = ((seg as u64 + 1) * wire::MTU).min(wqe.len) as usize;
                // A refcounted view into the gathered message — no copy.
                payload.slice(lo..hi)
            };
            let pkt = Packet {
                src: self.host,
                dst: config.peer_host,
                src_qp: qp,
                dst_qp: config.peer_qp,
                tc: config.tc,
                flow: config.flow,
                kind,
                msg_id,
                seg_idx: seg,
                seg_cnt,
                payload: seg_payload,
                opcode: wqe.opcode,
                total_len: wqe.len,
                remote_addr: wqe.remote_addr,
                rkey: wqe.rkey,
                atomic_args: wqe.atomic_args,
                local_addr: wqe.local_addr,
                wqe_seq: wqe.seq,
                wr_id: wqe.wr_id,
                posted_at: wqe.posted_at,
            };
            let h = arena.insert(pkt);
            self.egress
                .enqueue(EgressClass::TxRequest, EgressItem::of(arena.get(h), h));
        }
        self.kick_egress(now, out);
    }

    fn kick_egress(&mut self, now: SimTime, out: &mut Vec<NicAction>) {
        if let Some((item, ser)) = self.egress.try_grant(now) {
            let finish = now + ser;
            self.counters.tx_bytes += item.wire_bytes;
            self.counters.tx_packets += 1;
            self.counters.tx_bytes_per_tc[item.tc.index()] += item.wire_bytes;
            if item.payload_len > 0 {
                self.counters
                    .note_flow_payload(item.flow, u64::from(item.payload_len));
            }
            out.push(NicAction::Schedule {
                at: finish,
                event: NicEvent::EgressDone,
            });
            out.push(NicAction::Transmit {
                at: finish,
                pkt: item.pkt,
            });
        }
    }

    fn respond(
        &mut self,
        now: SimTime,
        req: &Packet,
        kind: PacketKind,
        payload: Bytes,
        arena: &mut PacketArena,
    ) {
        let seg_cnt = if payload.is_empty() {
            1
        } else {
            segment_count(payload.len() as u64)
        };
        for seg in 0..seg_cnt {
            let seg_payload = if payload.is_empty() {
                Bytes::new()
            } else {
                let lo = (seg as u64 * wire::MTU) as usize;
                let hi = ((seg as u64 + 1) * wire::MTU).min(payload.len() as u64) as usize;
                payload.slice(lo..hi)
            };
            let pkt = Packet {
                src: self.host,
                dst: req.src,
                src_qp: req.dst_qp,
                dst_qp: req.src_qp,
                tc: req.tc,
                flow: req.flow,
                kind,
                msg_id: req.msg_id,
                seg_idx: seg,
                seg_cnt,
                payload: seg_payload,
                opcode: req.opcode,
                total_len: req.total_len,
                remote_addr: req.remote_addr,
                rkey: req.rkey,
                atomic_args: req.atomic_args,
                local_addr: req.local_addr,
                wqe_seq: req.wqe_seq,
                wr_id: req.wr_id,
                posted_at: req.posted_at,
            };
            let h = arena.insert(pkt);
            self.egress
                .enqueue(EgressClass::RxResponse, EgressItem::of(arena.get(h), h));
        }
        let _ = now;
    }

    fn qp_pd(&self, qp: QpNum) -> PdId {
        self.qps
            .get(&qp)
            .map(|s| s.config.pd)
            // Unknown target QP: validation against a PD that matches no MR.
            .unwrap_or(PdId(u32::MAX))
    }

    fn rx_pu_done(
        &mut self,
        now: SimTime,
        h: PacketHandle,
        arena: &mut PacketArena,
        out: &mut Vec<NicAction>,
    ) {
        let kind = arena.get(h).kind;
        match kind {
            PacketKind::ReadReq | PacketKind::AtomicReq => {
                let (dst_qp, opcode, rkey, remote_addr, total_len) = {
                    let p = arena.get(h);
                    (p.dst_qp, p.opcode, p.rkey, p.remote_addr, p.total_len)
                };
                let pd = self.qp_pd(dst_qp);
                let len = if kind == PacketKind::AtomicReq {
                    wire::ATOMIC_LEN
                } else {
                    total_len
                };
                match self
                    .tpu
                    .access(now, &mut self.rng, pd, opcode, rkey, remote_addr, len)
                {
                    Ok(access) => {
                        self.counters.tpu_lookups += 1;
                        if self.trace_on() {
                            self.trace_tpu(arena.get(h), &access);
                        }
                        let at = self.responder_fence(dst_qp, access.reservation.end);
                        out.push(NicAction::Schedule {
                            at,
                            event: NicEvent::TpuDone { pkt: h },
                        });
                    }
                    Err(reason) => {
                        self.counters.naks_sent += 1;
                        // Terminal: the request dies here; only the NAK
                        // (a fresh packet) goes back out.
                        let pkt = arena.take(h);
                        self.trace_nak(now, &pkt, reason);
                        self.respond(now, &pkt, PacketKind::Nak(reason), Bytes::new(), arena);
                        self.kick_egress(now, out);
                    }
                }
            }
            PacketKind::WriteSeg => {
                if self.drop_replayed_inbound(now, h, arena, out) {
                    return;
                }
                let (key, seg_idx, dst_qp) = {
                    let p = arena.get(h);
                    ((p.src, p.msg_id), p.seg_idx, p.dst_qp)
                };
                if seg_idx == 0 {
                    if let Some(AssemblyState::Receiving { next_seg, .. }) =
                        self.assembly.get_mut(&key)
                    {
                        // Go-back-N restart of a message we already
                        // validated: accept from the top without a second
                        // TPU lookup.
                        *next_seg = 1;
                        let at = self.responder_fence(dst_qp, now);
                        out.push(NicAction::Schedule {
                            at,
                            event: NicEvent::TpuDone { pkt: h },
                        });
                        return;
                    }
                    let pd = self.qp_pd(dst_qp);
                    let (opcode, rkey, remote_addr, total_len) = {
                        let p = arena.get(h);
                        (p.opcode, p.rkey, p.remote_addr, p.total_len)
                    };
                    match self.tpu.access(
                        now,
                        &mut self.rng,
                        pd,
                        opcode,
                        rkey,
                        remote_addr,
                        total_len,
                    ) {
                        Ok(access) => {
                            self.counters.tpu_lookups += 1;
                            self.assembly.insert(
                                key,
                                AssemblyState::Receiving {
                                    next_seg: 1,
                                    placed: 0,
                                },
                            );
                            let at = self.responder_fence(dst_qp, access.reservation.end);
                            out.push(NicAction::Schedule {
                                at,
                                event: NicEvent::TpuDone { pkt: h },
                            });
                        }
                        Err(reason) => {
                            self.counters.naks_sent += 1;
                            self.trace_nak(now, arena.get(h), reason);
                            self.assembly.insert(key, AssemblyState::Failed);
                            let pkt = arena.take(h);
                            self.respond(now, &pkt, PacketKind::Nak(reason), Bytes::new(), arena);
                            self.kick_egress(now, out);
                        }
                    }
                } else {
                    match self.assembly.get_mut(&key) {
                        Some(AssemblyState::Failed) => {
                            // Message already NAK'd; drop the segment,
                            // clear state on the last one.
                            if arena.get(h).is_last_segment() {
                                self.assembly.remove(&key);
                            }
                            arena.free(h);
                        }
                        Some(AssemblyState::Receiving { next_seg, .. }) if *next_seg == seg_idx => {
                            *next_seg = seg_idx + 1;
                            let at = self.responder_fence(dst_qp, now);
                            out.push(NicAction::Schedule {
                                at,
                                event: NicEvent::TpuDone { pkt: h },
                            });
                        }
                        _ => {
                            // A gap (earlier segment lost/reordered) or a
                            // segment for an unknown message: go-back-N —
                            // drop and let the requester's timer resend.
                            self.counters.rx_out_of_order_dropped += 1;
                            arena.free(h);
                        }
                    }
                }
            }
            PacketKind::SendSeg => {
                if self.drop_replayed_inbound(now, h, arena, out) {
                    return;
                }
                let (key, seg_idx, dst_qp, total_len) = {
                    let p = arena.get(h);
                    ((p.src, p.msg_id), p.seg_idx, p.dst_qp, p.total_len)
                };
                if seg_idx == 0 {
                    if let Some(AssemblyState::Receiving { next_seg, .. }) =
                        self.assembly.get_mut(&key)
                    {
                        // Restart of a send we already matched to a recv
                        // WQE: keep the claimed recv, accept from the top.
                        *next_seg = 1;
                        let at = self.responder_fence(dst_qp, now);
                        out.push(NicAction::Schedule {
                            at,
                            event: NicEvent::TpuDone { pkt: h },
                        });
                        return;
                    }
                    // A replay of a previously NAK'd send retries the
                    // match: the application may have posted a receive
                    // since (that is what the rnr_retry budget buys).
                    self.assembly.remove(&key);
                    let recv = self
                        .qps
                        .get_mut(&dst_qp)
                        .and_then(|s| s.recv_queue.pop_front());
                    match recv {
                        Some(r) if r.len >= total_len => {
                            self.assembly.insert(
                                key,
                                AssemblyState::Receiving {
                                    next_seg: 1,
                                    placed: 0,
                                },
                            );
                            self.recv_targets.insert(key, r);
                            let at = self.responder_fence(dst_qp, now);
                            out.push(NicAction::Schedule {
                                at,
                                event: NicEvent::TpuDone { pkt: h },
                            });
                        }
                        _ => {
                            self.counters.naks_sent += 1;
                            self.trace_nak(now, arena.get(h), NakReason::ReceiveNotPosted);
                            self.assembly.insert(key, AssemblyState::Failed);
                            let pkt = arena.take(h);
                            self.respond(
                                now,
                                &pkt,
                                PacketKind::Nak(NakReason::ReceiveNotPosted),
                                Bytes::new(),
                                arena,
                            );
                            self.kick_egress(now, out);
                        }
                    }
                } else {
                    match self.assembly.get_mut(&key) {
                        Some(AssemblyState::Failed) => {
                            if arena.get(h).is_last_segment() {
                                self.assembly.remove(&key);
                                self.recv_targets.remove(&key);
                            }
                            arena.free(h);
                        }
                        Some(AssemblyState::Receiving { next_seg, .. }) if *next_seg == seg_idx => {
                            *next_seg = seg_idx + 1;
                            let at = self.responder_fence(dst_qp, now);
                            out.push(NicAction::Schedule {
                                at,
                                event: NicEvent::TpuDone { pkt: h },
                            });
                        }
                        _ => {
                            self.counters.rx_out_of_order_dropped += 1;
                            arena.free(h);
                        }
                    }
                }
            }
            PacketKind::ReadResp | PacketKind::AtomicResp => {
                let (msg_id, seg_idx, payload_len) = {
                    let p = arena.get(h);
                    (p.msg_id, p.seg_idx, p.payload.len() as u64)
                };
                if !self.inflight.contains_key(&msg_id) {
                    // Late or duplicate response: the message already
                    // completed (or was flushed). Dropping here keeps the
                    // exactly-once completion contract.
                    self.counters.rx_duplicate_dropped += 1;
                    arena.free(h);
                    return;
                }
                let key = (self.host, msg_id);
                let accept = match self
                    .assembly
                    .entry(key)
                    .or_insert(AssemblyState::Receiving {
                        next_seg: 0,
                        placed: 0,
                    }) {
                    AssemblyState::Receiving { next_seg, .. } if *next_seg == seg_idx => {
                        *next_seg = seg_idx + 1;
                        true
                    }
                    _ => false,
                };
                if !accept {
                    // Gap in the response stream: go-back-N — the timer
                    // will redrive the whole request.
                    self.counters.rx_out_of_order_dropped += 1;
                    arena.free(h);
                    return;
                }
                // Requester side: DMA the payload down to host memory.
                self.counters.pcie_bytes += payload_len;
                let ser =
                    SimDuration::serialization(payload_len.max(1), self.profile.pcie_rate_bps);
                let delay = self.pcie_delay();
                let res = self.pcie_down.reserve(now, ser);
                out.push(NicAction::Schedule {
                    at: res.end + delay,
                    event: NicEvent::DmaDone { pkt: h },
                });
            }
            PacketKind::Ack | PacketKind::Nak(_) => {
                // Terminal on the requester side.
                let pkt = arena.take(h);
                self.requester_response(now, &pkt, out);
            }
        }
    }

    /// Requester-side handling of an Ack or Nak for one of our messages.
    fn requester_response(&mut self, now: SimTime, pkt: &Packet, out: &mut Vec<NicAction>) {
        let Some(entry) = self.inflight.get_mut(&pkt.msg_id) else {
            // Duplicate/late response for a message that already
            // completed (its Ack beat this copy, or it was flushed).
            self.counters.rx_duplicate_dropped += 1;
            return;
        };
        match pkt.kind {
            PacketKind::Nak(NakReason::ReceiveNotPosted) => {
                // Receiver-not-ready: the responder had no recv WQE yet.
                // Absorb the NAK within the rnr_retry budget and let the
                // retransmission timer redrive the message — the peer may
                // post a receive in the meantime.
                if entry.rnr_retries < self.profile.rnr_retry_limit {
                    entry.rnr_retries += 1;
                    let qp = entry.qp;
                    self.counters.rnr_naks += 1;
                    if self.trace_on() {
                        self.tracer.instant(
                            Target::RnicModel,
                            "rnr_nak",
                            self.actor(qp),
                            now.as_picos(),
                            &[("msg_id", pkt.msg_id.into())],
                        );
                    }
                    return;
                }
                let qp = entry.qp;
                self.fail_qp(
                    now,
                    qp,
                    pkt.msg_id,
                    CqeStatus::RemoteError(NakReason::ReceiveNotPosted),
                    out,
                );
            }
            PacketKind::Nak(reason) => {
                // Protection NAK (bounds, rkey, PD): complete this WR with
                // the error but keep the QP usable — access violations are
                // the *probe* mechanism of the paper's snooping attack,
                // not a transport failure.
                self.deliver_cqe(now, pkt, CqeStatus::RemoteError(reason), false, 0, out);
            }
            _ => self.deliver_cqe(now, pkt, CqeStatus::Success, false, 0, out),
        }
    }

    /// Responder check for write/send segments: true when the packet
    /// belongs to a message that already completed — a replay caused by a
    /// lost Ack. The data (and any recv WQE consumption) must not be
    /// applied twice; re-Acking the last segment stops the requester.
    /// When it returns true the packet has been consumed from the arena.
    fn drop_replayed_inbound(
        &mut self,
        now: SimTime,
        h: PacketHandle,
        arena: &mut PacketArena,
        out: &mut Vec<NicAction>,
    ) -> bool {
        let key = {
            let p = arena.get(h);
            (p.src, p.msg_id)
        };
        if !self.completed_inbound.contains(&key) {
            return false;
        }
        self.counters.rx_duplicate_dropped += 1;
        let pkt = arena.take(h);
        if pkt.is_last_segment() {
            self.respond(now, &pkt, PacketKind::Ack, Bytes::new(), arena);
            self.kick_egress(now, out);
        }
        true
    }

    fn note_completed_inbound(&mut self, key: (HostId, u64)) {
        if self.completed_inbound.insert(key) {
            self.completed_inbound_order.push_back(key);
            while self.completed_inbound_order.len() > REPLAY_CACHE_CAP {
                if let Some(evict) = self.completed_inbound_order.pop_front() {
                    self.completed_inbound.remove(&evict);
                }
            }
        }
    }

    /// Clamps a responder pipeline event to PSN order for its QP.
    fn responder_fence(&mut self, qp: QpNum, at: SimTime) -> SimTime {
        let fence = self.responder_order.entry(qp).or_insert(SimTime::ZERO);
        let at = at.max_of(*fence);
        *fence = at;
        at
    }

    /// Fires when a message's retransmission timer expires.
    fn retransmit_check(
        &mut self,
        now: SimTime,
        qp: QpNum,
        msg_id: u64,
        arena: &mut PacketArena,
        out: &mut Vec<NicAction>,
    ) {
        let Some(entry) = self.inflight.get(&msg_id).cloned() else {
            return; // completed in time
        };
        if entry.retries >= self.profile.max_retries {
            // Retry budget exhausted: fatal transport error for the QP.
            self.fail_qp(now, qp, msg_id, CqeStatus::RetryExceeded, out);
            return;
        }
        let retries = entry.retries + 1;
        let wqe = entry.wqe.clone();
        self.inflight.insert(msg_id, Inflight { retries, ..entry });
        self.counters.retransmits += 1;
        if self.trace_on() {
            self.tracer.instant(
                Target::RnicModel,
                "retransmit",
                self.actor(qp),
                now.as_picos(),
                &[
                    ("msg_id", msg_id.into()),
                    ("retries", u64::from(retries).into()),
                ],
            );
        }
        // Drop partial response state and resend the whole message; the
        // next check backs off exponentially (IB-style retry pacing) so
        // repeated losses don't flood the fabric.
        self.assembly.remove(&(self.host, msg_id));
        let backoff = self
            .profile
            .retransmit_timeout
            .mul_f64((1u64 << retries.min(RETRY_BACKOFF_CAP)) as f64);
        out.push(NicAction::Schedule {
            at: now + backoff,
            event: NicEvent::RetransmitCheck { qp, msg_id },
        });
        self.send_request_packets(now, qp, wqe, msg_id, arena, out);
    }

    /// Clamps a requester request hand-off to WQE order for its QP.
    fn requester_fence(&mut self, qp: QpNum, at: SimTime) -> SimTime {
        let fence = self.requester_order.entry(qp).or_insert(SimTime::ZERO);
        let at = at.max_of(*fence);
        *fence = at;
        at
    }

    /// Clamps a responder DMA completion to PSN order for its QP.
    fn responder_dma_fence(&mut self, qp: QpNum, at: SimTime) -> SimTime {
        let fence = self.responder_dma_order.entry(qp).or_insert(SimTime::ZERO);
        let at = at.max_of(*fence);
        *fence = at;
        at
    }

    fn tpu_done(
        &mut self,
        now: SimTime,
        h: PacketHandle,
        arena: &mut PacketArena,
        out: &mut Vec<NicAction>,
    ) {
        let (kind, dst_qp, total_len, payload_len) = {
            let p = arena.get(h);
            (p.kind, p.dst_qp, p.total_len, p.payload.len() as u64)
        };
        match kind {
            PacketKind::ReadReq => {
                // DMA-read the data from host memory, after any earlier
                // write on this QP has been placed (same-QP ordering).
                self.counters.pcie_bytes += total_len;
                let ser = SimDuration::serialization(total_len.max(1), self.profile.pcie_rate_bps);
                let delay = self.pcie_delay();
                let res = self.pcie_up.reserve(now, ser);
                let fence = self
                    .placement_fence
                    .get(&dst_qp)
                    .copied()
                    .unwrap_or(SimTime::ZERO);
                let at = self.responder_dma_fence(dst_qp, (res.end + delay).max_of(fence));
                out.push(NicAction::Schedule {
                    at,
                    event: NicEvent::DmaDone { pkt: h },
                });
            }
            PacketKind::WriteSeg | PacketKind::SendSeg => {
                self.counters.pcie_bytes += payload_len;
                let ser =
                    SimDuration::serialization(payload_len.max(1), self.profile.pcie_rate_bps);
                let delay = self.pcie_delay();
                let res = self.pcie_down.reserve(now, ser);
                let placed = self.responder_dma_fence(dst_qp, res.end + delay);
                let fence = self.placement_fence.entry(dst_qp).or_insert(SimTime::ZERO);
                *fence = fence.max_of(placed);
                out.push(NicAction::Schedule {
                    at: placed,
                    event: NicEvent::DmaDone { pkt: h },
                });
            }
            PacketKind::AtomicReq => {
                let fence = self
                    .placement_fence
                    .get(&dst_qp)
                    .copied()
                    .unwrap_or(SimTime::ZERO);
                let res = self
                    .atomic_unit
                    .reserve(now.max_of(fence), self.profile.atomic_unit_service);
                let at = self.responder_dma_fence(dst_qp, res.end);
                out.push(NicAction::Schedule {
                    at,
                    event: NicEvent::AtomicExecDone { pkt: h },
                });
            }
            _ => unreachable!("TpuDone for non-request packet"),
        }
    }

    fn dma_done(
        &mut self,
        now: SimTime,
        h: PacketHandle,
        arena: &mut PacketArena,
        out: &mut Vec<NicAction>,
    ) {
        // Every DmaDone branch is terminal for the inbound packet: it is
        // consumed here and only fresh packets (responses) re-enter the
        // arena.
        let pkt = arena.take(h);
        match pkt.kind {
            PacketKind::ReadReq => {
                // Responder: data fetched; emit the response segments.
                self.counters.responder_ops_per_opcode[pkt.opcode.index()] += 1;
                let data = Bytes::from(self.mem.read(pkt.remote_addr, pkt.total_len));
                self.respond(now, &pkt, PacketKind::ReadResp, data, arena);
                self.kick_egress(now, out);
            }
            PacketKind::WriteSeg => {
                let addr = pkt.segment_addr();
                self.mem.write(addr, &pkt.payload);
                self.finish_inbound_segment(now, pkt, arena, out);
            }
            PacketKind::SendSeg => {
                let key = (pkt.src, pkt.msg_id);
                if let Some(recv) = self.recv_targets.get(&key).copied() {
                    let addr = recv.local_addr + pkt.seg_idx as u64 * wire::MTU;
                    self.mem.write(addr, &pkt.payload);
                }
                self.finish_inbound_segment(now, pkt, arena, out);
            }
            PacketKind::ReadResp | PacketKind::AtomicResp => {
                // Requester: place the payload into the WQE's local buffer.
                if !pkt.payload.is_empty() {
                    let addr = pkt.local_addr + pkt.seg_idx as u64 * wire::MTU;
                    self.mem.write(addr, &pkt.payload);
                }
                let key = (self.host, pkt.msg_id);
                let done = match self.assembly.get_mut(&key) {
                    Some(AssemblyState::Receiving { placed, .. }) => {
                        *placed += 1;
                        *placed == pkt.seg_cnt
                    }
                    // Assembly cleared between acceptance and DMA (a
                    // timeout resend or a QP flush): don't complete.
                    _ => false,
                };
                if done {
                    self.assembly.remove(&key);
                    let old = if pkt.kind == PacketKind::AtomicResp {
                        let bytes = pkt.payload.to_vec();
                        u64::from_le_bytes(bytes.try_into().unwrap_or([0; 8]))
                    } else {
                        0
                    };
                    self.deliver_cqe(now, &pkt, CqeStatus::Success, false, old, out);
                }
            }
            _ => unreachable!("DmaDone for unexpected packet kind"),
        }
    }

    fn finish_inbound_segment(
        &mut self,
        now: SimTime,
        pkt: Packet,
        arena: &mut PacketArena,
        out: &mut Vec<NicAction>,
    ) {
        let key = (pkt.src, pkt.msg_id);
        // Segments are accepted strictly in order and responder DMAs are
        // fenced per QP, so the whole message is placed exactly when the
        // last segment's DMA lands while the assembly is still live.
        let done = match self.assembly.get_mut(&key) {
            Some(AssemblyState::Receiving { placed, .. }) => {
                *placed += 1;
                pkt.is_last_segment()
            }
            // Already completed (a replayed tail) or NAK'd.
            _ => false,
        };
        if done {
            self.assembly.remove(&key);
            self.note_completed_inbound(key);
            self.counters.responder_ops_per_opcode[pkt.opcode.index()] += 1;
            self.respond(now, &pkt, PacketKind::Ack, Bytes::new(), arena);
            self.kick_egress(now, out);
            if pkt.kind == PacketKind::SendSeg {
                if let Some(recv) = self.recv_targets.remove(&key) {
                    // Receive completion on the responder.
                    let cqe = Cqe {
                        qp: pkt.dst_qp,
                        wr_id: recv.wr_id,
                        status: CqeStatus::Success,
                        opcode: pkt.opcode,
                        byte_len: pkt.total_len,
                        posted_at: pkt.posted_at,
                        completed_at: now,
                        is_recv: true,
                        atomic_old_value: 0,
                    };
                    self.schedule_cqe_write(now, cqe, out);
                }
            }
        }
    }

    fn atomic_done(
        &mut self,
        now: SimTime,
        h: PacketHandle,
        arena: &mut PacketArena,
        out: &mut Vec<NicAction>,
    ) {
        // Execute on host memory; 8 B each way over PCIe is folded into
        // the atomic unit's service time. RC semantics: a retransmitted
        // atomic must not execute twice, so replay the cached result.
        let pkt = arena.take(h);
        self.counters.responder_ops_per_opcode[pkt.opcode.index()] += 1;
        self.counters.pcie_bytes += 16;
        let replay_key = (pkt.src, pkt.msg_id);
        let (compare, operand) = pkt.atomic_args;
        let old = if let Some(&cached) = self.atomic_replay.get(&replay_key) {
            cached
        } else {
            let old = match pkt.opcode {
                Opcode::AtomicFetchAdd => self.mem.fetch_add_u64(pkt.remote_addr, operand),
                Opcode::AtomicCmpSwap => {
                    self.mem.compare_swap_u64(pkt.remote_addr, compare, operand)
                }
                _ => unreachable!("atomic exec for non-atomic opcode"),
            };
            self.atomic_replay.insert(replay_key, old);
            self.atomic_replay_order.push_back(replay_key);
            while self.atomic_replay_order.len() > REPLAY_CACHE_CAP {
                if let Some(evict) = self.atomic_replay_order.pop_front() {
                    self.atomic_replay.remove(&evict);
                }
            }
            old
        };
        self.respond(
            now,
            &pkt,
            PacketKind::AtomicResp,
            Bytes::from(old.to_le_bytes().to_vec()),
            arena,
        );
        self.kick_egress(now, out);
    }

    fn deliver_cqe(
        &mut self,
        now: SimTime,
        pkt: &Packet,
        status: CqeStatus,
        is_recv: bool,
        atomic_old: u64,
        out: &mut Vec<NicAction>,
    ) {
        if !is_recv && self.inflight.remove(&pkt.msg_id).is_none() {
            // The message already completed (duplicate Ack) or was
            // flushed: never deliver a second completion for one WR.
            self.counters.rx_duplicate_dropped += 1;
            return;
        }
        let cqe = Cqe {
            qp: pkt.dst_qp,
            wr_id: pkt.wr_id,
            status,
            opcode: pkt.opcode,
            byte_len: pkt.total_len,
            posted_at: pkt.posted_at,
            completed_at: now,
            is_recv,
            atomic_old_value: atomic_old,
        };
        if is_recv {
            self.schedule_cqe_write(now, cqe, out);
            return;
        }
        self.retire_ordered(now, pkt.dst_qp, pkt.wqe_seq, cqe, out);
    }

    /// RC retirement: send completions are delivered strictly in post
    /// order per QP, so a fast later op waits for its predecessors.
    fn retire_ordered(
        &mut self,
        ready: SimTime,
        qp: QpNum,
        seq: u64,
        cqe: Cqe,
        out: &mut Vec<NicAction>,
    ) {
        let Some(state) = self.qps.get_mut(&qp) else {
            self.schedule_cqe_write(ready, cqe, out);
            return;
        };
        // In-order fast path (the overwhelmingly common case on RC):
        // this is the next WQE and nothing is held back, so no hold-map
        // traffic at all.
        if seq == state.retire_seq && state.retire_hold.is_empty() {
            state.retire_seq += 1;
            let at = ready.max_of(state.retire_clock);
            state.retire_clock = at;
            self.schedule_cqe_write(at, cqe, out);
            return;
        }
        state.retire_hold.insert(seq, (ready, cqe));
        // Drain every WQE that is now retirable before scheduling the
        // writes, so the `qps` borrow ends first; delivery order and
        // timestamps are identical to retiring one at a time.
        let mut due: Vec<(SimTime, Cqe)> = Vec::new();
        while let Some((ready, cqe)) = state.retire_hold.remove(&state.retire_seq) {
            state.retire_seq += 1;
            let at = ready.max_of(state.retire_clock);
            state.retire_clock = at;
            due.push((at, cqe));
        }
        for (at, cqe) in due {
            self.schedule_cqe_write(at, cqe, out);
        }
    }

    fn schedule_cqe_write(&mut self, now: SimTime, mut cqe: Cqe, out: &mut Vec<NicAction>) {
        self.counters.pcie_bytes += CQE_BYTES;
        let ser = SimDuration::serialization(CQE_BYTES, self.profile.pcie_rate_bps);
        let res = self.pcie_down.reserve(now, ser);
        let at = res.end + self.profile.cqe_delivery;
        cqe.completed_at = at;
        out.push(NicAction::Schedule {
            at,
            event: NicEvent::CqeWrite { cqe },
        });
    }
}
