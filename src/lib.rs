//! # ragnar — umbrella crate for the Ragnar (DAC 2025) reproduction
//!
//! Re-exports every subsystem of the reproduction so examples and
//! downstream users can depend on a single crate:
//!
//! * [`sim`] — deterministic discrete-event engine ([`sim_core`]).
//! * [`nic`] — the RNIC microarchitecture model ([`rnic_model`]).
//! * [`verbs`] — the verbs-style RDMA software stack ([`rdma_verbs`]).
//! * [`chaos`] — deterministic fault plans, the wire-level injector and
//!   the transport invariant oracles ([`ragnar_chaos`]).
//! * [`attacks`] — reverse-engineering benchmarks, covert channels and
//!   side channels ([`ragnar_core`]).
//! * [`classifier`] — pure-Rust trace classifiers ([`trace_classifier`]).
//! * [`workloads`] — shuffle/join database and Sherman-style KV victims
//!   ([`ragnar_workloads`]).
//! * [`defense`] — PFC, Harmonic counters and noise mitigation
//!   ([`ragnar_defense`]).
//! * [`pythia`] — the cache-based covert-channel baseline
//!   ([`pythia_baseline`]).
//!
//! See `README.md` for a guided tour and `DESIGN.md` for the system
//! inventory and the per-experiment index.

#![warn(missing_docs)]

pub use ragnar_chaos as chaos;
pub use ragnar_core as attacks;
pub use ragnar_defense as defense;
pub use ragnar_workloads as workloads;
pub use rdma_verbs as verbs;
pub use rnic_model as nic;
pub use sim_core as sim;
pub use trace_classifier as classifier;

pub use pythia_baseline as pythia;
