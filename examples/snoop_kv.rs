//! Snoop which record of a disaggregated-memory KV store the victim is
//! reading (§VI-B, Fig. 13): a Sherman-style B⁺-tree client hammers one
//! secret 64 B record of a shared 1 KB file; the attacker recovers the
//! offset purely from the ULI of its *own* reads.
//!
//! ```sh
//! cargo run --release --example snoop_kv
//! ```

use ragnar::attacks::side::snoop::{collect_pools, mean_trace, SnoopConfig};
use ragnar::verbs::DeviceKind;

fn main() {
    // The victim picks a secret candidate (the attacker doesn't know it).
    let secret_offset = 576u64;

    // A coarse observation set keeps this example fast; the full attack
    // (bench `fig13_snoop`/`fig13_classifier`) uses 257 offsets and a
    // trained classifier.
    let cfg = SnoopConfig {
        step: 64,
        ..SnoopConfig::default()
    };
    println!(
        "victim: Sherman KV client reading 64 B at secret offset {secret_offset} \
         of the shared file"
    );
    println!(
        "attacker: sweeping {} observation offsets with 64 B reads, measuring ULI\n",
        cfg.observation_offsets().len()
    );

    let pools = collect_pools(DeviceKind::ConnectX4, secret_offset, &cfg);
    let trace = mean_trace(&pools);

    for (i, uli) in trace.iter().enumerate() {
        let off = i as u64 * cfg.step;
        let bar = "#".repeat(((uli - 80.0).max(0.0) / 2.0) as usize);
        println!("offset {off:>5} B | {uli:7.1} ns {bar}");
    }

    let guess = trace
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i as u64 * cfg.step)
        .expect("non-empty trace");
    println!("\nattacker's guess: offset {guess} B (truth: {secret_offset} B)");
    assert_eq!(
        guess, secret_offset,
        "the offset effect gave the secret away"
    );
}
