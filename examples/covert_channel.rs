//! Transmit a secret message between two mutually isolated clients over
//! the Grain-III inter-MR covert channel (§V-C) — no packet ever flows
//! between them; the bits ride on translation-unit contention at the
//! shared server.
//!
//! ```sh
//! cargo run --release --example covert_channel
//! ```

use ragnar::attacks::covert::{inter_mr, parse_bits};
use ragnar::verbs::DeviceKind;

fn main() {
    let secret = "RAGNAR";
    // Encode ASCII to bits, MSB first.
    let bit_string: String = secret.bytes().map(|b| format!("{b:08b}")).collect();
    let bits = parse_bits(&bit_string);
    println!("covert Tx encodes {:?} as {} bits", secret, bits.len());

    let kind = DeviceKind::ConnectX5;
    let cfg = inter_mr::default_config(kind);
    println!(
        "channel: {} reads, send queue {}, bit period {:.1} us, {kind}",
        cfg.tx_msg_len,
        cfg.tx_depth,
        cfg.bit_period.as_micros_f64()
    );

    let run = inter_mr::run(kind, &bits, &cfg);

    // Decode back to text.
    let mut decoded_bytes = Vec::new();
    for chunk in run.report.decoded.chunks(8) {
        let mut byte = 0u8;
        for &bit in chunk {
            byte = (byte << 1) | u8::from(bit);
        }
        decoded_bytes.push(byte);
    }
    println!(
        "covert Rx decodes: {:?}",
        String::from_utf8_lossy(&decoded_bytes)
    );
    println!(
        "raw bandwidth {:.1} Kbps, bit errors {}/{} ({:.2}%), effective {:.1} Kbps",
        run.report.raw_bandwidth_bps / 1e3,
        run.report.bit_errors,
        run.report.bits_sent,
        run.report.error_rate() * 100.0,
        run.report.effective_bandwidth_bps() / 1e3
    );
    println!(
        "\nthe receiver only ever measured the latency of its own reads to \
         its own memory region — Grain-II monitoring sees two constant, \
         well-behaved tenants."
    );
}
