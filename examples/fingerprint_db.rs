//! Fingerprint a distributed database's operations from a co-located
//! client (§VI-A, Fig. 12): the attacker never sees the victim's
//! packets — only its own bandwidth — yet recovers when shuffles and
//! joins run.
//!
//! ```sh
//! cargo run --release --example fingerprint_db
//! ```

use ragnar::attacks::side::fingerprint::{run, FingerprintConfig, Pattern};
use ragnar::verbs::DeviceKind;

fn main() {
    let cfg = FingerprintConfig::default();
    println!("victim phase script:");
    for p in &cfg.phases {
        println!("  {:>8} for {:?}", p.label(), p.duration());
    }
    println!();

    let r = run(DeviceKind::ConnectX4, &cfg);

    // Per-window report.
    let mut last = None;
    for &(t, p) in &r.detections {
        if last != Some(p) {
            println!("t = {:7.0} us: detector reports {:?}", t.as_micros_f64(), p);
            last = Some(p);
        }
    }
    println!(
        "\nwindow accuracy against ground truth: {:.1}%",
        r.accuracy * 100.0
    );
    let shuffles = r
        .detections
        .iter()
        .filter(|&&(_, p)| p == Pattern::Shuffle)
        .count();
    let joins = r
        .detections
        .iter()
        .filter(|&&(_, p)| p == Pattern::Join)
        .count();
    println!("detected {shuffles} shuffle windows and {joins} join windows");
}
