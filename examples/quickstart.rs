//! Quickstart: bring up a two-host RDMA fabric on a simulated
//! ConnectX-5, move data with Writes/Reads/Atomics, and look at the
//! `ethtool`-style counters.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ragnar::sim::SimTime;
use ragnar::verbs::{AccessFlags, ConnectOptions, DeviceProfile, Simulation, WorkRequest};

fn main() {
    // A deterministic two-host fabric: everything is seeded, so this
    // program prints the same numbers every run.
    let mut sim = Simulation::new(2026);
    let client = sim.add_host(DeviceProfile::connectx5());
    let server = sim.add_host(DeviceProfile::connectx5());

    // Protection domains and a remotely accessible memory region, pinned
    // on 2 MiB huge pages as in the paper's setup.
    let pd_c = sim.alloc_pd(client);
    let pd_s = sim.alloc_pd(server);
    let local = sim.register_mr(client, pd_c, 1 << 21, AccessFlags::remote_all());
    let remote = sim.register_mr(server, pd_s, 1 << 21, AccessFlags::remote_all());

    // A reliable-connection queue pair.
    let (qp, _server_qp) = sim.connect(client, pd_c, server, pd_s, ConnectOptions::default());

    // RDMA Write: push a greeting into server memory.
    sim.write_memory(client, local.addr(0), b"hello, disaggregated world");
    sim.post_send(
        qp,
        WorkRequest::write(1, local.addr(0), remote.addr(0), remote.key, 26),
    )
    .expect("post write");

    // RDMA Read it back into a different local buffer.
    sim.post_send(
        qp,
        WorkRequest::read(2, local.addr(4096), remote.addr(0), remote.key, 26),
    )
    .expect("post read");

    // An 8-byte fetch-and-add on a remote counter.
    sim.memory_mut(server).write_u64(remote.addr(1024), 41);
    sim.post_send(
        qp,
        WorkRequest::fetch_add(3, local.addr(8192), remote.addr(1024), remote.key, 1),
    )
    .expect("post atomic");

    sim.run_until(SimTime::from_millis(1));

    for (host, cqe) in sim.take_completions() {
        println!(
            "completion on host {host:?}: wr_id={} {} {}B in {:.2} us (status ok: {})",
            cqe.wr_id,
            cqe.opcode,
            cqe.byte_len,
            cqe.latency().as_micros_f64(),
            cqe.status.is_ok(),
        );
    }
    let echoed = sim.read_memory(client, local.addr(4096), 26);
    println!("read-back: {}", String::from_utf8_lossy(&echoed));
    println!(
        "remote counter after fetch-add: {}",
        sim.nic(server).memory().read_u64(remote.addr(1024))
    );

    let c = sim.counters(client);
    println!(
        "client NIC counters: {} tx pkts / {} tx bytes, {} rx pkts",
        c.tx_packets, c.tx_bytes, c.rx_packets
    );
    let s = sim.counters(server);
    println!(
        "server NIC counters: {} TPU lookups, {} PCIe bytes, {} responder ops",
        s.tpu_lookups,
        s.pcie_bytes,
        s.responder_ops_per_opcode.iter().sum::<u64>()
    );
}
