//! Fault injection and QP error recovery: take a link down long enough
//! to exhaust the retransmission budget, watch the QP land in the Error
//! state with its queue flushed, then walk the verbs recovery ladder
//! and serve traffic again on the healed fabric.
//!
//! ```sh
//! cargo run --release --example chaos_recovery
//! ```

use ragnar::sim::SimTime;
use ragnar::verbs::{
    AccessFlags, ConnectOptions, CqeStatus, DeviceProfile, FaultEvent, FaultKind, FaultPlan,
    LinkSelector, Simulation, VerbsError, WorkRequest,
};

fn main() {
    let mut sim = Simulation::new(2026);
    let client = sim.add_host(DeviceProfile::connectx5());
    let server = sim.add_host(DeviceProfile::connectx5());
    let pd_c = sim.alloc_pd(client);
    let pd_s = sim.alloc_pd(server);
    let remote = sim.register_mr(server, pd_s, 1 << 21, AccessFlags::remote_all());
    let (qp, _server_qp) = sim.connect(client, pd_c, server, pd_s, ConnectOptions::default());

    // A hand-written fault plan: the whole fabric goes dark for 10 ms.
    // With a 100 µs retransmit timeout and exponential backoff, the
    // last of the 7 retries fires at 6.3 ms — still inside the outage —
    // so the first work request is doomed to exhaust its budget.
    // (`FaultPlan::generate(seed, &PlanParams::default())` draws
    // randomized plans instead; `--chaos-seed` feeds them to every
    // bench experiment.)
    let plan = FaultPlan {
        seed: 7,
        events: vec![FaultEvent {
            link: LinkSelector::Any,
            from: SimTime::ZERO,
            until: SimTime::from_millis(10),
            kind: FaultKind::LinkDown,
        }],
    };
    println!("installed fault plan:\n{}", plan.to_text());
    sim.install_fault_plan(&plan);

    sim.write_memory(server, remote.addr(0), b"still here");
    sim.post_send(
        qp,
        WorkRequest::read(1, 0x1000, remote.addr(0), remote.key, 10),
    )
    .expect("post");
    sim.post_send(
        qp,
        WorkRequest::read(2, 0x2000, remote.addr(0), remote.key, 10),
    )
    .expect("post");

    sim.run_until(SimTime::from_millis(30));
    for (_, cqe) in sim.take_completions() {
        println!(
            "wr {} completed {:?} at {:.1} ms",
            cqe.wr_id,
            cqe.status,
            cqe.completed_at.as_picos() as f64 / 1e9,
        );
        assert!(!cqe.status.is_ok(), "the outage outlives the retry budget");
    }

    // The fatal error moved the QP to the Error state: new posts bounce
    // with a typed error instead of silently queueing into a dead QP.
    assert!(sim.qp_in_error(qp));
    let refused = sim
        .post_send(
            qp,
            WorkRequest::read(3, 0x3000, remote.addr(0), remote.key, 10),
        )
        .expect_err("error-state QP refuses work");
    assert_eq!(refused, VerbsError::QpInError);
    println!("post while in Error -> {refused}");

    // Recovery ladder: drain completions (done above), reset the QP,
    // repost. Retry exhaustion already carried sim time past the outage
    // window, so the redriven read crosses a healthy wire.
    sim.recover_qp(qp).expect("reset from Error");
    sim.post_send(
        qp,
        WorkRequest::read(3, 0x3000, remote.addr(0), remote.key, 10),
    )
    .expect("post after recovery");
    sim.run_until(SimTime::from_millis(40));
    let done = sim.take_completions();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].1.status, CqeStatus::Success);
    println!(
        "after recover_qp: wr 3 -> {:?}, payload {:?}",
        done[0].1.status,
        String::from_utf8_lossy(&sim.read_memory(client, 0x3000, 10)),
    );

    // The injector and the fabric books agree on what the outage cost.
    let stats = sim.fault_stats().expect("plan installed");
    let fabric = sim.fabric_stats();
    println!("injector: {stats:?}");
    println!("fabric:   {fabric:?}  (conserved: {})", fabric.conserved());
    println!(
        "fault trace digest: {:#018x} (identical on every run)",
        sim.fault_trace_digest().expect("plan installed"),
    );
}
